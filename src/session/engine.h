// Session-level diagnoser: multi-observation, multi-fault diagnosis on
// top of the single-observation engine (diag/engine.h).
//
// A session is several applications of the test set to one die. The
// engine folds the runs into consensus evidence (session/evidence.h),
// ranks the consensus through the existing staged engine — a single-run
// clean session is bit-identical to diagnose_observed() — and then, for
// the multi-fault question the single-fault model cannot answer, searches
// for every *minimal-cardinality* set of modeled faults whose detection
// sets jointly explain the consensus failures:
//
//   * candidate scoring runs on bit-packed per-fault detection rows
//     through the word-parallel kernels (store/kernels.h);
//   * the search is branch-and-bound set cover, seeded with a greedy
//     cover as the incumbent upper bound, expanding candidates in
//     coverage-gain order with the Pomeranz/Reddy accidental-detection
//     index (a fault's detection count) as the tiebreak — low-AD faults
//     are harder to implicate by accident, so they are tried first;
//   * the search is RunBudget-bounded and anytime: on expiry the greedy
//     incumbent (a valid, possibly non-minimal cover) is still reported,
//     with completed == false;
//   * exclusion branching enumerates each cover exactly once, so a
//     completed search reports ALL covers of the minimal cardinality as
//     ranked ambiguity groups, each with a confidence derived from
//     cross-run agreement: the weighted fraction of concrete evidence
//     (weights = fraction of runs backing each consensus reading) the
//     group's joint prediction gets right.
//
// Detection bits are the pass/fail projection the staged engine already
// uses per dictionary kind: definite "this fault fails this test" bits
// only, so a same/different row with a non-fault-free baseline
// contributes its bit-0 ("matches the faulty baseline", hence fails)
// positions and nothing speculative.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "diag/engine.h"
#include "session/evidence.h"
#include "util/budget.h"

namespace sddict {

class SignatureStore;

struct SessionOptions {
  // Options of the single-fault consensus ranking (staged chain).
  EngineOptions engine{};
  // Largest cover cardinality the search considers.
  std::size_t max_cover = 8;
  // Cap on reported ambiguity groups; more minimal covers than this sets
  // groups_truncated instead of growing the reply without bound.
  std::size_t max_groups = 16;
  // Bounds the cover search; anytime, never throws on expiry.
  RunBudget budget{};
};

// One minimal-cardinality explanation of the consensus failures.
struct AmbiguityGroup {
  std::vector<FaultId> faults;  // ascending
  // Consensus-pass tests this fault set predicts failing (soft evidence
  // against the group; covers never leave a consensus failure uncovered).
  std::uint32_t conflicts = 0;
  // Summed accidental-detection index of the members.
  std::uint64_t ad_sum = 0;
  // Agreement-weighted fraction of concrete evidence the group predicts
  // correctly; 1.0 for a conflict-free cover of a clean session.
  double confidence = 0.0;
};

struct SessionDiagnosis {
  // The existing staged engine on the consensus observation (single-fault
  // ranking) — bit-identical to diagnose_observed() on the same vector.
  EngineDiagnosis single;
  std::size_t num_runs = 0;
  // Consensus-fail tests, and the subset no modeled fault detects (those
  // are excluded from the cover constraint and reported here instead).
  std::size_t failing_tests = 0;
  std::size_t unexplained_failures = 0;
  // Coverable failures the best reported group still leaves uncovered —
  // nonzero only when no full cover exists within max_cover.
  std::size_t uncovered_failures = 0;
  // Cardinality of the reported groups (0 when nothing fails).
  std::size_t min_cover = 0;
  // True when the search completed, proving min_cover minimal and groups
  // exhaustive (up to max_groups).
  bool cover_minimal = false;
  bool groups_truncated = false;
  // Ranked best-first: fewest conflicts, then highest confidence, then
  // lowest AD sum, then lexicographic fault ids.
  std::vector<AmbiguityGroup> groups;
  bool completed = true;  // cover search ran to completion
  StopReason stop_reason = StopReason::kCompleted;
};

// Immutable per-backend state: packed detection rows + AD index + the
// bound single-fault ranking entry point. Dictionary constructors borrow
// their argument (caller keeps it alive); the store constructor shares
// ownership, which is how the serving layer hot-swaps it.
class SessionEngine {
 public:
  explicit SessionEngine(std::shared_ptr<const SignatureStore> store);
  explicit SessionEngine(const PassFailDictionary& dict);
  explicit SessionEngine(const SameDifferentDictionary& dict);
  explicit SessionEngine(const MultiBaselineDictionary& dict);
  explicit SessionEngine(const FullDictionary& dict);
  SessionEngine(const FirstFailDictionary& dict, const ResponseMatrix& rm);

  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return num_tests_; }

  // Accidental-detection index of f: how many tests detect it.
  std::uint32_t ad_index(FaultId f) const { return ad_[f]; }
  // Definite pass/fail-projection detection bit.
  bool detects(FaultId f, std::size_t t) const;

  SessionDiagnosis diagnose(const SessionEvidence& evidence,
                            const SessionOptions& options = {}) const;

 private:
  using RankFn = std::function<EngineDiagnosis(const std::vector<Observed>&,
                                               const EngineOptions&)>;

  SessionEngine() = default;
  void build(std::size_t num_faults, std::size_t num_tests,
             const std::function<bool(FaultId, std::size_t)>& detect);

  std::shared_ptr<const SignatureStore> store_;  // keep-alive (store ctor)
  std::size_t num_faults_ = 0;
  std::size_t num_tests_ = 0;
  std::size_t words_ = 0;                // 64-bit words per detection row
  std::vector<std::uint64_t> detect_;    // num_faults_ x words_, zero tail
  std::vector<std::uint32_t> ad_;
  std::vector<ResponseId> ff_;  // per-test fault-free id; empty = all id 0
  RankFn rank_;
};

}  // namespace sddict
