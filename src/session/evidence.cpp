#include "session/evidence.h"

#include <stdexcept>
#include <string>

namespace sddict {

std::vector<Observed> SessionEvidence::consensus() const {
  std::vector<Observed> out(tests.size());
  for (std::size_t t = 0; t < tests.size(); ++t) out[t] = tests[t].consensus;
  return out;
}

SessionEvidence aggregate_runs(const std::vector<SessionRun>& runs) {
  SessionEvidence ev;
  ev.num_runs = runs.size();
  if (runs.empty()) return ev;
  ev.num_tests = runs.front().observed.size();
  for (std::size_t r = 1; r < runs.size(); ++r)
    if (runs[r].observed.size() != ev.num_tests)
      throw std::invalid_argument(
          "aggregate_runs: run " + std::to_string(r + 1) + " has " +
          std::to_string(runs[r].observed.size()) + " tests, expected " +
          std::to_string(ev.num_tests));

  ev.tests.resize(ev.num_tests);
  // Distinct values per test are tiny (usually 1); a flat first-seen list
  // beats a map at every realistic retest count.
  std::vector<ResponseId> vals;
  std::vector<std::uint32_t> counts;
  for (std::size_t t = 0; t < ev.num_tests; ++t) {
    TestEvidence& e = ev.tests[t];
    vals.clear();
    counts.clear();
    bool unstable_seen = false;
    for (const SessionRun& run : runs) {
      const Observed& o = run.observed[t];
      if (o.status == ObservedStatus::kUnstable) unstable_seen = true;
      if (o.status != ObservedStatus::kValue) continue;
      ++e.votes;
      std::size_t i = 0;
      while (i < vals.size() && vals[i] != o.value) ++i;
      if (i == vals.size()) {
        vals.push_back(o.value);
        counts.push_back(1);
      } else {
        ++counts[i];
      }
    }
    if (vals.empty()) {
      e.consensus = unstable_seen ? Observed::unstable() : Observed::missing();
      continue;
    }
    e.conflicted = vals.size() >= 2;
    if (e.conflicted) ++ev.conflicted_tests;
    std::size_t best = 0;
    bool tied = false;
    for (std::size_t i = 1; i < vals.size(); ++i) {
      if (counts[i] > counts[best]) {
        best = i;
        tied = false;
      } else if (counts[i] == counts[best]) {
        tied = true;
      }
    }
    e.agree = counts[best];
    // A tied plurality has no honest winner: the tester read the die two
    // ways equally often, which is exactly what kUnstable means.
    e.consensus = tied ? Observed::unstable() : Observed::of(vals[best]);
  }
  return ev;
}

}  // namespace sddict
