// Open diagnosis sessions keyed by die/session id: the state behind the
// `session begin/append/diagnose/end` protocol verbs. Runs accumulate
// until the client asks for a diagnosis or closes the session.
//
// Deliberately simple: a bounded map owned and touched only by the
// serving loop thread (stdio session or the net event loop — the same
// place admin verbs already execute), so it needs no locking. Bounds are
// explicit admission errors, never silent eviction: a tester flow that
// leaks sessions should hear about it.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "session/evidence.h"

namespace sddict {

struct SessionLimits {
  std::size_t max_sessions = 64;  // concurrently open dies
  std::size_t max_runs = 64;      // retest applications per die
};

class SessionStore {
 public:
  explicit SessionStore(const SessionLimits& limits = {}) : limits_(limits) {}

  // All throw std::runtime_error with protocol-ready messages.
  void begin(const std::string& id);
  // Appends one run; returns the session's new run count. Every run must
  // observe the same number of tests as the first.
  std::size_t append(const std::string& id, SessionRun run);
  const std::vector<SessionRun>& runs(const std::string& id) const;
  // Closes the session; returns how many runs it held.
  std::size_t end(const std::string& id);

  bool open(const std::string& id) const { return sessions_.count(id) != 0; }
  std::size_t size() const { return sessions_.size(); }

 private:
  SessionLimits limits_;
  std::map<std::string, std::vector<SessionRun>> sessions_;
};

}  // namespace sddict
