#include "session/store.h"

#include <stdexcept>

namespace sddict {

namespace {

constexpr std::size_t kMaxIdLength = 128;

void check_id(const std::string& id) {
  if (id.empty()) throw std::runtime_error("session id must not be empty");
  if (id.size() > kMaxIdLength)
    throw std::runtime_error("session id longer than " +
                             std::to_string(kMaxIdLength) + " characters");
}

[[noreturn]] void unknown(const std::string& id) {
  throw std::runtime_error("no open session '" + id +
                           "' (use 'session begin')");
}

}  // namespace

void SessionStore::begin(const std::string& id) {
  check_id(id);
  if (sessions_.count(id) != 0)
    throw std::runtime_error("session '" + id + "' is already open");
  if (sessions_.size() >= limits_.max_sessions)
    throw std::runtime_error(
        "too many open sessions (max " + std::to_string(limits_.max_sessions) +
        "); close one with 'session end'");
  sessions_.emplace(id, std::vector<SessionRun>{});
}

std::size_t SessionStore::append(const std::string& id, SessionRun run) {
  check_id(id);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) unknown(id);
  std::vector<SessionRun>& runs = it->second;
  if (runs.size() >= limits_.max_runs)
    throw std::runtime_error("session '" + id + "' already holds " +
                             std::to_string(limits_.max_runs) + " runs");
  if (!runs.empty() &&
      runs.front().observed.size() != run.observed.size())
    throw std::runtime_error(
        "run observes " + std::to_string(run.observed.size()) +
        " tests, session '" + id + "' started with " +
        std::to_string(runs.front().observed.size()));
  runs.push_back(std::move(run));
  return runs.size();
}

const std::vector<SessionRun>& SessionStore::runs(const std::string& id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) unknown(id);
  return it->second;
}

std::size_t SessionStore::end(const std::string& id) {
  check_id(id);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) unknown(id);
  const std::size_t n = it->second.size();
  sessions_.erase(it);
  return n;
}

}  // namespace sddict
