// Protocol glue for the session diagnoser: parses the datalog-type
// `session` frames the serving front ends hand over, drives SessionStore
// + SessionEngine, and renders the deterministic reply text.
//
// Wire grammar (every verb is a datalog-type frame, i.e. a block closed
// by a bare `end` line — which is exactly why the verbs pass through the
// FrameReader, the net event loop and the fleet proxy unchanged):
//
//   session begin DIE          session append DIE         session diagnose DIE
//   end                        sddict testerlog v1        end
//                              tests <k>
//   session end DIE            t <i> <val>
//   end                        end        <- doubles as the frame close
//
// Replies (always closed by `done`; no volatile timing line, so stdio
// and TCP transcripts diff clean):
//
//   session id=DIE state=open runs=<n> [dropped=<d>]     begin/append
//   session id=DIE state=closed runs=<n>                 end
//   session id=DIE runs=<r> tests=<k> conflicted=<c>     diagnose, then the
//   diagnosis ... / candidate ... / cover ...            single-fault block
//   multifault failing=... min_cover=... groups=...      and the ranked
//   group <rank> faults=<a,b> ... confidence=<x.xxxx>    ambiguity groups
//   done
//
// handle() is single-threaded by design: front ends execute session verbs
// inline on their loop thread (the same discipline admin verbs follow).
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "session/engine.h"
#include "session/store.h"

namespace sddict {

class SignatureStore;

struct SessionServiceOptions {
  SessionLimits limits{};
  SessionOptions diagnose{};
  // Per-diagnose wall-clock bound folded into the cover-search and
  // single-fault budgets; 0 = none. Keeps an inline diagnose from
  // stalling the serving loop.
  double deadline_ms = 0;
};

void write_session_diagnosis(std::ostream& out, const std::string& id,
                             const SessionEvidence& evidence,
                             const SessionDiagnosis& d);

class SessionService {
 public:
  // Resolves the engine for the currently-served dictionary on every
  // verb, so a hot-swapped store is picked up without any session-side
  // plumbing (pair with SessionEngineCache to rebuild only on swap).
  using EngineFn = std::function<std::shared_ptr<const SessionEngine>()>;

  explicit SessionService(EngineFn engine,
                          const SessionServiceOptions& options = {});

  // Handles one complete `session` frame; writes the full reply,
  // including the closing `done`. Never throws: every failure renders as
  // an `error ...` reply.
  void handle(const std::string& frame_text, std::ostream& out);

  std::size_t open_sessions() const { return store_.size(); }

 private:
  EngineFn engine_;
  SessionServiceOptions options_;
  SessionStore store_;
};

// Store-identity-keyed cache: the packed detection rows and AD index are
// rebuilt only when the serving layer actually publishes a new store.
class SessionEngineCache {
 public:
  std::shared_ptr<const SessionEngine> get(
      std::shared_ptr<const SignatureStore> store);

 private:
  std::shared_ptr<const SignatureStore> store_;
  std::shared_ptr<const SessionEngine> engine_;
};

}  // namespace sddict
