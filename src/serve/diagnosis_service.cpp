#include "serve/diagnosis_service.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace sddict {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Observation -> 128-bit cache key. Value and qualifier are packed into
// one word per test so kMissing, kUnstable and every response id (incl.
// kUnknownResponse) key distinctly.
Hash128 observation_key(const std::vector<Observed>& observed) {
  std::vector<std::uint64_t> packed(observed.size());
  for (std::size_t t = 0; t < observed.size(); ++t)
    packed[t] = static_cast<std::uint64_t>(observed[t].value) |
                (static_cast<std::uint64_t>(observed[t].status) << 32);
  return hash_words(packed.data(), packed.size(), /*seed=*/0x5eed5eed);
}

}  // namespace

// log2 microsecond bucket of a latency, clamped to [0, 63].
std::size_t latency_bucket(double ms) {
  const double us = ms * 1000.0;
  if (us < 1.0) return 0;
  const auto b = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(us)));
  return std::min<std::size_t>(b, 63);
}

// Upper bound of bucket b, back in milliseconds.
double bucket_upper_ms(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b)) / 1000.0;
}

double percentile_from_buckets(const std::uint64_t* buckets,
                               std::uint64_t total, double p) {
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(total)));
  std::uint64_t seen = 0;
  std::size_t last_nonempty = 0;
  for (std::size_t b = 0; b < 64; ++b) {
    if (buckets[b] > 0) last_nonempty = b;
    seen += buckets[b];
    // The target sample lives in the last non-empty bucket at or below b
    // (b itself can be empty when earlier buckets already covered the
    // target); b's own bound would be one no recorded latency ever hit.
    if (seen >= target) return bucket_upper_ms(last_nonempty);
  }
  return bucket_upper_ms(63);
}

std::string format_service_stats(const ServiceStats& s) {
  std::ostringstream out;
  out << "requests=" << s.requests << " batches=" << s.batches
      << " cache_hits=" << s.cache_hits << " cache_misses=" << s.cache_misses
      << " deadline_expired=" << s.deadline_expired << " shed=" << s.shed_count
      << " queue_depth=" << s.queue_depth << " in_flight=" << s.in_flight;
  for (int o = 0; o < 4; ++o)
    out << " " << diagnosis_outcome_name(static_cast<DiagnosisOutcome>(o))
        << "=" << s.outcomes[o];
  out << " swaps=" << s.swaps;
  out << " p50_ms=" << s.p50_ms << " p99_ms=" << s.p99_ms
      << " max_ms=" << s.max_ms;
  return out.str();
}

DiagnosisService::DiagnosisService(SignatureStore store,
                                   const ServiceOptions& options)
    : backend_(std::move(store)), options_(options), pool_(options.threads) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisService::DiagnosisService(std::shared_ptr<const SignatureStore> store,
                                   const ServiceOptions& options)
    : backend_(std::move(store)), options_(options), pool_(options.threads) {
  if (!std::get<std::shared_ptr<const SignatureStore>>(backend_))
    throw std::runtime_error("DiagnosisService: null shared store");
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisService::DiagnosisService(PassFailDictionary dict,
                                   const ServiceOptions& options)
    : backend_(std::move(dict)), options_(options), pool_(options.threads) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisService::DiagnosisService(SameDifferentDictionary dict,
                                   const ServiceOptions& options)
    : backend_(std::move(dict)), options_(options), pool_(options.threads) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisService::DiagnosisService(MultiBaselineDictionary dict,
                                   const ServiceOptions& options)
    : backend_(std::move(dict)), options_(options), pool_(options.threads) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisService::DiagnosisService(FullDictionary dict,
                                   const ServiceOptions& options)
    : backend_(std::move(dict)), options_(options), pool_(options.threads) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisService::DiagnosisService(FirstFailDictionary dict, ResponseMatrix rm,
                                   const ServiceOptions& options)
    : backend_(FirstFailBackend{std::move(dict), std::move(rm)}),
      options_(options),
      pool_(options.threads) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

DiagnosisService::~DiagnosisService() {
  shutdown();
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::size_t DiagnosisService::num_tests() const {
  return std::visit(
      [this](const auto& b) -> std::size_t {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, FirstFailBackend>)
          return b.dict.num_tests();
        else if constexpr (std::is_same_v<B,
                                          std::shared_ptr<const SignatureStore>>) {
          std::lock_guard<std::mutex> lk(swap_mutex_);
          return b->num_tests();
        } else
          return b.num_tests();
      },
      backend_);
}

std::size_t DiagnosisService::num_faults() const {
  return std::visit(
      [this](const auto& b) -> std::size_t {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, FirstFailBackend>)
          return b.dict.num_faults();
        else if constexpr (std::is_same_v<B,
                                          std::shared_ptr<const SignatureStore>>) {
          std::lock_guard<std::mutex> lk(swap_mutex_);
          return b->num_faults();
        } else
          return b.num_faults();
      },
      backend_);
}

void DiagnosisService::swap_store(std::shared_ptr<const SignatureStore> next) {
  if (!next)
    throw std::runtime_error("DiagnosisService: swap_store on a null store");
  auto* slot = std::get_if<std::shared_ptr<const SignatureStore>>(&backend_);
  if (!slot)
    throw std::runtime_error(
        "DiagnosisService: swap_store outside repository-backed mode");
  {
    std::lock_guard<std::mutex> lk(swap_mutex_);
    *slot = std::move(next);
    // Release-publish AFTER the pointer: the dispatcher's acquire load of
    // the epoch at its next batch then implies it sees the new store too,
    // so its cache flush and the swap can never be observed out of order.
    swap_epoch_.fetch_add(1, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lk(stats_mutex_);
  ++stats_.swaps;
}

std::shared_ptr<const SignatureStore> DiagnosisService::current_store() const {
  if (auto* slot =
          std::get_if<std::shared_ptr<const SignatureStore>>(&backend_)) {
    std::lock_guard<std::mutex> lk(swap_mutex_);
    return *slot;
  }
  return nullptr;
}

std::future<ServiceResponse> DiagnosisService::submit(
    std::vector<Observed> observed) {
  Request req;
  req.observed = std::move(observed);
  req.submitted = Clock::now();
  std::future<ServiceResponse> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lk(queue_mutex_);
    queue_not_full_.wait(lk, [this] {
      return !accepting_ || queue_.size() < options_.queue_capacity;
    });
    if (!accepting_)
      throw std::runtime_error("DiagnosisService: submit after shutdown");
    queue_.push_back(std::move(req));
  }
  queue_not_empty_.notify_one();
  return fut;
}

std::optional<std::future<ServiceResponse>> DiagnosisService::try_submit(
    std::vector<Observed> observed) {
  Request req;
  req.observed = std::move(observed);
  req.submitted = Clock::now();
  std::future<ServiceResponse> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    if (!accepting_)
      throw std::runtime_error("DiagnosisService: submit after shutdown");
    if (queue_.size() >= options_.queue_capacity) {
      std::lock_guard<std::mutex> slk(stats_mutex_);
      ++stats_.shed_count;
      return std::nullopt;
    }
    queue_.push_back(std::move(req));
  }
  queue_not_empty_.notify_one();
  return fut;
}

ServiceResponse DiagnosisService::diagnose(std::vector<Observed> observed) {
  return submit(std::move(observed)).get();
}

std::size_t DiagnosisService::queue_depth() const {
  std::lock_guard<std::mutex> lk(queue_mutex_);
  return queue_.size();
}

bool DiagnosisService::accepting() const {
  std::lock_guard<std::mutex> lk(queue_mutex_);
  return accepting_;
}

void DiagnosisService::shutdown() {
  std::unique_lock<std::mutex> lk(queue_mutex_);
  accepting_ = false;
  queue_not_full_.notify_all();
  queue_not_empty_.notify_all();
  // Wait for the dispatcher to drain what was accepted. `stopping_` stays
  // false here so the dispatcher keeps running (stats stay queryable and
  // the destructor reuses this path).
  queue_drained_.wait(lk, [this] { return queue_.empty() && !in_flight_; });
}

ServiceStats DiagnosisService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    s = stats_;
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < 64; ++b) total += latency_buckets_[b];
    s.p50_ms = percentile_from_buckets(latency_buckets_, total, 0.50);
    s.p99_ms = percentile_from_buckets(latency_buckets_, total, 0.99);
  }
  // Gauges come from the queue lock, taken after the stats lock is
  // released — never both at once.
  std::lock_guard<std::mutex> lk(queue_mutex_);
  s.queue_depth = queue_.size();
  s.in_flight = inflight_requests_;
  return s;
}

void DiagnosisService::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(queue_mutex_);
      queue_not_empty_.wait(
          lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      const std::size_t n =
          std::min(std::max<std::size_t>(options_.batch, 1), queue_.size());
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ = true;
      inflight_requests_ = batch.size();
    }
    queue_not_full_.notify_all();
    process_batch(batch);
    {
      std::lock_guard<std::mutex> lk(queue_mutex_);
      in_flight_ = false;
      inflight_requests_ = 0;
    }
    queue_drained_.notify_all();
  }
}

EngineDiagnosis DiagnosisService::run_one(const std::vector<Observed>& observed,
                                          Clock::time_point submitted,
                                          bool allow_sharding) {
  EngineOptions opt = options_.engine;
  // ThreadPool::parallel_for is not reentrant, so only the dispatcher-
  // inline single-miss path may shard its rank sweep across the worker
  // pool; calls made from inside a pool task must clear it — including a
  // pool the caller put into options_.engine.
  opt.pool = allow_sharding ? &pool_ : nullptr;
  if (options_.deadline_ms > 0) {
    // Deadline counts from submission, so queueing time eats into the
    // rank budget — a request that waited too long resolves immediately
    // with an expired (anytime, best-effort-empty) result.
    const double remaining_s =
        (options_.deadline_ms - ms_since(submitted)) / 1000.0;
    opt.budget.max_seconds = std::max(remaining_s, 1e-9);
  }
  return std::visit(
      [&](const auto& b) -> EngineDiagnosis {
        using B = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<B, FirstFailBackend>)
          return diagnose_observed(b.dict, b.rm, observed, opt);
        else if constexpr (std::is_same_v<B,
                                          std::shared_ptr<const SignatureStore>>) {
          // Snapshot the published pointer; the request then ranks against
          // that version even if a swap lands mid-rank, and keeps the old
          // store alive until it resolves.
          std::shared_ptr<const SignatureStore> snap;
          {
            std::lock_guard<std::mutex> lk(swap_mutex_);
            snap = b;
          }
          return diagnose_observed(*snap, observed, opt);
        } else
          return diagnose_observed(b, observed, opt);
      },
      backend_);
}

void DiagnosisService::process_batch(std::vector<Request>& batch) {
  // A hot-swap may have changed the backing store since the last batch;
  // cached rankings from the old version must not leak past it. The cache
  // is dispatcher-thread-only, so the swapping thread bumps an epoch and
  // the flush happens here.
  const std::uint64_t epoch = swap_epoch_.load(std::memory_order_acquire);
  if (epoch != seen_swap_epoch_) {
    cache_.clear();
    lru_.clear();
    seen_swap_epoch_ = epoch;
  }

  struct Slot {
    Request* req = nullptr;
    Hash128 key{};
    bool cached = false;
    EngineDiagnosis result;
    std::exception_ptr error;
  };
  std::vector<Slot> slots(batch.size());
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    slots[i].req = &batch[i];
    if (options_.cache > 0) {
      slots[i].key = observation_key(batch[i].observed);
      auto it = cache_.find(slots[i].key);
      if (it != cache_.end()) {
        slots[i].cached = true;
        slots[i].result = it->second.diagnosis;
        lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
        continue;
      }
    }
    misses.push_back(i);
  }

  if (misses.size() == 1) {
    // No point paying the dispatch barrier for a single query — and since
    // this runs on the dispatcher thread, the workers are free to shard
    // the rank sweep itself (engine.h: EngineOptions::pool).
    Slot& s = slots[misses[0]];
    try {
      s.result = run_one(s.req->observed, s.req->submitted,
                         /*allow_sharding=*/true);
    } catch (...) {
      s.error = std::current_exception();
    }
  } else if (!misses.empty()) {
    pool_.parallel_for(0, misses.size(), [&](std::size_t j) {
      Slot& s = slots[misses[j]];
      try {
        s.result = run_one(s.req->observed, s.req->submitted);
      } catch (...) {
        s.error = std::current_exception();
      }
    });
  }

  for (Slot& s : slots) {
    const double latency = ms_since(s.req->submitted);
    if (s.error) {
      s.req->promise.set_exception(s.error);
      continue;
    }
    if (!s.cached && options_.cache > 0 && s.result.completed) {
      // Only completed results are worth remembering: a deadline-expired
      // prefix would poison every later lookup of the same observation.
      auto it = cache_.find(s.key);
      if (it == cache_.end()) {
        lru_.push_front(s.key);
        cache_.emplace(s.key, CacheEntry{s.result, lru_.begin()});
        if (cache_.size() > options_.cache) {
          cache_.erase(lru_.back());
          lru_.pop_back();
        }
      }
    }
    record(s.result, s.cached, latency);
    ServiceResponse resp;
    resp.diagnosis = std::move(s.result);
    resp.cache_hit = s.cached;
    resp.latency_ms = latency;
    s.req->promise.set_value(std::move(resp));
  }

  std::lock_guard<std::mutex> lk(stats_mutex_);
  ++stats_.batches;
}

void DiagnosisService::record(const EngineDiagnosis& d, bool cache_hit,
                              double latency_ms) {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  ++stats_.requests;
  if (cache_hit)
    ++stats_.cache_hits;
  else
    ++stats_.cache_misses;
  ++stats_.outcomes[static_cast<std::size_t>(d.outcome)];
  if (!d.completed) ++stats_.deadline_expired;
  ++latency_buckets_[latency_bucket(latency_ms)];
  stats_.max_ms = std::max(stats_.max_ms, latency_ms);
}

}  // namespace sddict
