// Concurrent batched diagnosis service — the query-serving layer over one
// packed SignatureStore (or, for the equivalence harness, one dictionary)
// and the noise-tolerant engine (diag/engine.h).
//
// Shape: producers submit() qualified observations into a bounded MPMC
// queue (submit blocks when the queue is full — backpressure, not
// unbounded memory) and get a std::future. A single dispatcher thread
// drains the queue in micro-batches of up to `batch` requests, answers
// what it can from an LRU cache keyed by the observation's 128-bit hash
// (util/hash.h), and ranks the rest across the shared ThreadPool — one
// whole diagnosis per worker task, so a batch of b queries costs b
// independent kernel sweeps with no cross-request locking. Because the
// cache and its LRU list are touched only by the dispatcher thread, cache
// maintenance needs no lock at all.
//
// Per-request deadlines reuse the RunBudget anytime semantics: a request
// whose remaining deadline expires mid-rank resolves (never throws) with
// the engine's best-so-far prefix and completed == false. Only completed
// results enter the cache.
//
// With batch == 1, the cache off and no deadline, a service response is
// bit-identical to calling diagnose_observed() directly — the property
// the single-query equivalence gate (tests/test_serving.cpp) pins down.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "diag/engine.h"
#include "store/signature_store.h"
#include "util/hash.h"
#include "util/threadpool.h"

namespace sddict {

struct ServiceOptions {
  std::size_t threads = 1;  // ranking workers; 0 = hardware concurrency
  std::size_t batch = 8;    // max requests ranked per micro-batch
  std::size_t cache = 256;  // LRU capacity in entries; 0 disables
  double deadline_ms = 0;   // per-request deadline from submit(); 0 = none
  std::size_t queue_capacity = 1024;  // bounded request queue
  EngineOptions engine{};             // tolerance, max_results, ...
};

struct ServiceResponse {
  EngineDiagnosis diagnosis;
  bool cache_hit = false;
  double latency_ms = 0;  // submit() -> resolution
};

// Counter snapshot for the report layer. Latency percentiles come from a
// 64-bucket log2 histogram (microsecond resolution), so p50/p99 are upper
// bounds of their bucket, not exact order statistics.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Fallback-stage tallies, indexed by DiagnosisOutcome.
  std::uint64_t outcomes[4] = {0, 0, 0, 0};
  std::uint64_t deadline_expired = 0;  // resolved with completed == false
  std::uint64_t swaps = 0;             // hot-swaps published via swap_store()
  std::uint64_t shed_count = 0;        // try_submit() rejections (queue full)
  // Point-in-time gauges sampled by stats(): requests waiting in the MPMC
  // queue, and requests the dispatcher currently holds unresolved. The
  // admission-control layer (src/net) keys its load shedding off these.
  std::uint64_t queue_depth = 0;
  std::uint64_t in_flight = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

std::string format_service_stats(const ServiceStats& s);

// Latency-histogram plumbing behind ServiceStats, exposed so the
// percentile math is unit-testable against hand-built histograms.
// latency_bucket maps a latency to its log2-microsecond bucket in [0, 63];
// bucket_upper_ms is that bucket's upper bound back in milliseconds.
std::size_t latency_bucket(double ms);
double bucket_upper_ms(std::size_t b);
// p-th percentile (p in [0, 1]) over a 64-bucket histogram holding `total`
// samples: the upper bound of the bucket containing the ceil(p * total)-th
// sample — always a bound some recorded sample actually fell under, never
// the bound of an empty bucket.
double percentile_from_buckets(const std::uint64_t* buckets,
                               std::uint64_t total, double p);

class DiagnosisService {
 public:
  // Store-backed service: the deployment path.
  DiagnosisService(SignatureStore store, const ServiceOptions& options = {});
  // Repository-backed (hot-swappable) service: the store is shared, and
  // swap_store() can atomically publish a replacement version at any time.
  // Throws std::runtime_error on a null store.
  DiagnosisService(std::shared_ptr<const SignatureStore> store,
                   const ServiceOptions& options = {});
  // Dictionary-backed services: same engine, same batching, no packed
  // rows. These exist so every dictionary type (including first-fail,
  // which a store can only carry as its pass/fail projection) can be
  // served and equivalence-tested against the direct engine call.
  DiagnosisService(PassFailDictionary dict, const ServiceOptions& options = {});
  DiagnosisService(SameDifferentDictionary dict,
                   const ServiceOptions& options = {});
  DiagnosisService(MultiBaselineDictionary dict,
                   const ServiceOptions& options = {});
  DiagnosisService(FullDictionary dict, const ServiceOptions& options = {});
  DiagnosisService(FirstFailDictionary dict, ResponseMatrix rm,
                   const ServiceOptions& options = {});

  // Drains every in-flight and queued request, then joins.
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  std::size_t num_tests() const;
  std::size_t num_faults() const;

  // Enqueues one observation. Blocks while the queue is full; throws
  // std::runtime_error after shutdown(). The future always resolves — a
  // malformed observation (wrong length) resolves it with the engine's
  // exception rather than throwing here.
  std::future<ServiceResponse> submit(std::vector<Observed> observed);

  // Non-blocking admission: enqueues like submit() but, instead of
  // blocking while the queue is full, returns nullopt and tallies the
  // rejection in ServiceStats::shed_count — the primitive the networked
  // front end's load shedding is built on (an event loop must never park
  // inside submit()). Still throws after shutdown().
  std::optional<std::future<ServiceResponse>> try_submit(
      std::vector<Observed> observed);

  // submit() + wait: the synchronous convenience path.
  ServiceResponse diagnose(std::vector<Observed> observed);

  // Lock-taking convenience gauge (also sampled into stats()).
  std::size_t queue_depth() const;

  // False once shutdown() has begun: submit()/try_submit() throw from
  // then on. Drain introspection for supervisors deciding when a service
  // is safe to restart.
  bool accepting() const;

  // Stops accepting new requests and blocks until everything queued has
  // resolved. Idempotent; stats() remains valid afterwards.
  void shutdown();

  ServiceStats stats() const;

  // Hot-swap (repository-backed mode only; throws otherwise). Publication
  // is atomic: requests already ranking finish on the version they
  // snapshotted at dispatch; every later request sees `next`. The old
  // version is retired when the last in-flight reference drains. The
  // dispatcher's result cache is invalidated at its next batch, so a
  // content-changing swap can never serve a stale cached ranking.
  void swap_store(std::shared_ptr<const SignatureStore> next);
  // The currently published store, or nullptr outside repository mode.
  std::shared_ptr<const SignatureStore> current_store() const;

 private:
  struct Request {
    std::vector<Observed> observed;
    std::promise<ServiceResponse> promise;
    std::chrono::steady_clock::time_point submitted;
  };
  struct CacheEntry {
    EngineDiagnosis diagnosis;
    std::list<Hash128>::iterator lru;
  };

  void dispatcher_loop();
  void process_batch(std::vector<Request>& batch);
  // allow_sharding: whether the engine may split its rank sweep across
  // pool_ (true only when called from the dispatcher thread itself —
  // parallel_for is not reentrant from a pool task).
  EngineDiagnosis run_one(const std::vector<Observed>& observed,
                          std::chrono::steady_clock::time_point submitted,
                          bool allow_sharding = false);
  void record(const EngineDiagnosis& d, bool cache_hit, double latency_ms);

  // Exactly one alternative is engaged for the service's lifetime.
  struct FirstFailBackend {
    FirstFailDictionary dict;
    ResponseMatrix rm;
  };
  // The shared_ptr alternative is the hot-swappable (repository-backed)
  // mode; reads and writes of the pointer itself go through swap_mutex_.
  std::variant<SignatureStore, std::shared_ptr<const SignatureStore>,
               PassFailDictionary, SameDifferentDictionary,
               MultiBaselineDictionary, FullDictionary, FirstFailBackend>
      backend_;
  mutable std::mutex swap_mutex_;
  std::atomic<std::uint64_t> swap_epoch_{0};
  std::uint64_t seen_swap_epoch_ = 0;  // dispatcher-thread-only
  ServiceOptions options_;
  ThreadPool pool_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_drained_;
  std::deque<Request> queue_;
  bool accepting_ = true;
  bool stopping_ = false;
  bool in_flight_ = false;  // dispatcher holds an unresolved batch
  std::size_t inflight_requests_ = 0;  // size of that unresolved batch

  // Dispatcher-thread-only state (no lock: single reader/writer).
  std::unordered_map<Hash128, CacheEntry, Hash128Hasher> cache_;
  std::list<Hash128> lru_;  // front = most recent

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  std::uint64_t latency_buckets_[64] = {};  // log2(us), guarded by stats_mutex_

  std::thread dispatcher_;  // last member: joins before the rest dies
};

}  // namespace sddict
