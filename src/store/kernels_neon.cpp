// NEON kernels: 128-bit lanes, popcount via vcnt + widening pairwise adds.
// NEON (AdvSIMD) is architecturally mandatory on AArch64, so the runtime
// check is a constant — the table exists whenever this TU is compiled in
// (HWCAP probing would only matter for 32-bit ARM, which the build skips).
#include "store/kernels.h"

#if defined(SDDICT_KERNELS_NEON)

#include <arm_neon.h>

#include <bit>

namespace sddict::kernels {

namespace {

// popcount of one 128-bit vector, as a u64.
inline std::uint64_t popcount_u64x2(uint8x16_t v) {
  return vaddvq_u64(vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
}

std::uint32_t neon_hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t nwords) {
  std::uint64_t n = 0;
  std::size_t i = 0;
  for (; i + 2 <= nwords; i += 2) {
    const uint64x2_t v = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    n += popcount_u64x2(vreinterpretq_u8_u64(v));
  }
  for (; i < nwords; ++i)
    n += static_cast<std::uint64_t>(std::popcount(a[i] ^ b[i]));
  return static_cast<std::uint32_t>(n);
}

std::uint32_t neon_masked_hamming(const std::uint64_t* row,
                                  const std::uint64_t* obs,
                                  const std::uint64_t* care,
                                  std::size_t nwords) {
  std::uint64_t n = 0;
  std::size_t i = 0;
  for (; i + 2 <= nwords; i += 2) {
    const uint64x2_t v = vandq_u64(
        veorq_u64(vld1q_u64(row + i), vld1q_u64(obs + i)),
        vld1q_u64(care + i));
    n += popcount_u64x2(vreinterpretq_u8_u64(v));
  }
  for (; i < nwords; ++i)
    n += static_cast<std::uint64_t>(
        std::popcount((row[i] ^ obs[i]) & care[i]));
  return static_cast<std::uint32_t>(n);
}

std::uint32_t neon_masked_symbol_mismatches(const std::uint32_t* row,
                                            const std::uint32_t* obs,
                                            const std::uint8_t* care,
                                            std::size_t n) {
  uint32x4_t acc = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint8x8_t c8 = vld1_u8(care + i);
    const uint16x8_t c16 = vmovl_u8(c8);
    const uint32x4_t c_lo = vmovl_u16(vget_low_u16(c16));
    const uint32x4_t c_hi = vmovl_u16(vget_high_u16(c16));
    const uint32x4_t eq_lo = vceqq_u32(vld1q_u32(row + i), vld1q_u32(obs + i));
    const uint32x4_t eq_hi =
        vceqq_u32(vld1q_u32(row + i + 4), vld1q_u32(obs + i + 4));
    // Mismatch lane: cared (c > 0) AND NOT equal; the all-ones mask
    // subtracts as -1, i.e. adds 1 to the lane counter.
    acc = vsubq_u32(acc, vbicq_u32(vcgtq_u32(c_lo, vdupq_n_u32(0)), eq_lo));
    acc = vsubq_u32(acc, vbicq_u32(vcgtq_u32(c_hi, vdupq_n_u32(0)), eq_hi));
  }
  std::uint32_t mism = vaddvq_u32(acc);
  for (; i < n; ++i)
    mism += static_cast<std::uint32_t>((care[i] != 0) & (row[i] != obs[i]));
  return mism;
}

constexpr KernelTable kNeonTable = {
    "neon",
    &neon_hamming,
    &neon_masked_hamming,
    &neon_masked_symbol_mismatches,
};

}  // namespace

const KernelTable* neon_kernels() { return &kNeonTable; }

}  // namespace sddict::kernels

#endif  // SDDICT_KERNELS_NEON
