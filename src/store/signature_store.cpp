#include "store/signature_store.h"

#include <cstring>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#define SDDICT_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sddict {

namespace {

constexpr char kMagic[8] = {'S', 'D', 'S', 'T', 'O', 'R', 'E', '1'};
constexpr std::uint32_t kByteOrder = 0x01020304;
constexpr std::uint32_t kVersion = 1;

// Fixed header offsets (see signature_store.h for the map).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffByteOrder = 8;
constexpr std::size_t kOffVersion = 12;
constexpr std::size_t kOffKind = 16;
constexpr std::size_t kOffSource = 20;
constexpr std::size_t kOffNumFaults = 24;
constexpr std::size_t kOffNumTests = 32;
constexpr std::size_t kOffNumOutputs = 40;
constexpr std::size_t kOffRank = 48;
constexpr std::size_t kOffSigBits = 56;
constexpr std::size_t kOffRowStride = 64;
constexpr std::size_t kOffSectionCount = 72;
constexpr std::size_t kOffSections = 80;  // 2 x {u64 off, u64 size, u32 crc, u32 pad}
constexpr std::size_t kSectionEntry = 24;
constexpr std::size_t kOffHeaderCrc = 4092;

// Corruption can make header fields arbitrary; these caps keep every size
// computation below free of u64 overflow (and absurd allocations).
constexpr std::uint64_t kMaxDim = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxRank = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxSectionBytes = std::uint64_t{1} << 48;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("SignatureStore: " + what);
}

std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}

void put32(std::byte* p, std::size_t off, std::uint32_t v) {
  std::memcpy(p + off, &v, 4);
}
void put64(std::byte* p, std::size_t off, std::uint64_t v) {
  std::memcpy(p + off, &v, 8);
}
std::uint32_t get32(const std::byte* p, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, p + off, 4);
  return v;
}
std::uint64_t get64(const std::byte* p, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, p + off, 8);
  return v;
}

struct ImageSpec {
  StoreKind kind{};
  StoreSource source{};
  std::uint64_t num_faults = 0;
  std::uint64_t num_tests = 0;
  std::uint64_t num_outputs = 0;
  std::uint64_t rank = 1;
  std::uint64_t sig_bits = 0;
  // Writes one row into its zero-initialized row_stride-byte slot.
  std::function<void(FaultId, std::byte*)> fill_row;
  std::vector<std::byte> baselines;
};

std::vector<std::uint64_t> make_image(const ImageSpec& spec,
                                      std::size_t* bytes_out) {
  if (spec.num_faults == 0 || spec.num_tests == 0)
    fail("cannot build a store from an empty dictionary");
  const std::uint64_t stride =
      round_up((spec.sig_bits + 7) / 8, SignatureStore::kRowAlign);
  const std::uint64_t rows_size = spec.num_faults * stride;
  const std::uint64_t rows_pad = round_up(rows_size, SignatureStore::kPageSize);
  const std::uint64_t bl_size = spec.baselines.size();
  const std::uint64_t bl_pad = round_up(bl_size, SignatureStore::kPageSize);
  const std::uint64_t rows_off = SignatureStore::kPageSize;
  const std::uint64_t bl_off = rows_off + rows_pad;
  const std::uint64_t total = bl_off + bl_pad;

  std::vector<std::uint64_t> image(total / 8, 0);
  std::byte* p = reinterpret_cast<std::byte*>(image.data());
  std::memcpy(p + kOffMagic, kMagic, 8);
  put32(p, kOffByteOrder, kByteOrder);
  put32(p, kOffVersion, kVersion);
  put32(p, kOffKind, static_cast<std::uint32_t>(spec.kind));
  put32(p, kOffSource, static_cast<std::uint32_t>(spec.source));
  put64(p, kOffNumFaults, spec.num_faults);
  put64(p, kOffNumTests, spec.num_tests);
  put64(p, kOffNumOutputs, spec.num_outputs);
  put64(p, kOffRank, spec.rank);
  put64(p, kOffSigBits, spec.sig_bits);
  put64(p, kOffRowStride, stride);
  put32(p, kOffSectionCount, 2);
  put64(p, kOffSections + 0, rows_off);
  put64(p, kOffSections + 8, rows_size);
  put64(p, kOffSections + kSectionEntry + 0, bl_off);
  put64(p, kOffSections + kSectionEntry + 8, bl_size);

  for (FaultId f = 0; f < spec.num_faults; ++f)
    spec.fill_row(f, p + rows_off + f * stride);
  if (bl_size > 0) std::memcpy(p + bl_off, spec.baselines.data(), bl_size);

  Crc32 rows_crc;
  rows_crc.update(p + rows_off, rows_pad);
  put32(p, kOffSections + 16, rows_crc.value());
  Crc32 bl_crc;
  bl_crc.update(p + bl_off, bl_pad);
  put32(p, kOffSections + kSectionEntry + 16, bl_crc.value());
  Crc32 header_crc;
  header_crc.update(p, kOffHeaderCrc);
  put32(p, kOffHeaderCrc, header_crc.value());

  *bytes_out = static_cast<std::size_t>(total);
  return image;
}

void fill_bit_row(const BitVec& row, std::byte* dst) {
  std::memcpy(dst, row.words().data(), row.words().size() * 8);
}

std::vector<std::byte> ids_to_bytes(const ResponseId* ids, std::size_t n) {
  std::vector<std::byte> out(n * 4);
  if (n > 0) std::memcpy(out.data(), ids, n * 4);
  return out;
}

}  // namespace

const char* store_kind_name(StoreKind k) {
  switch (k) {
    case StoreKind::kPassFail: return "pass/fail";
    case StoreKind::kSameDifferent: return "same/different";
    case StoreKind::kMultiBaseline: return "multi-baseline";
    case StoreKind::kFull: return "full";
  }
  return "?";
}

const char* store_source_name(StoreSource s) {
  switch (s) {
    case StoreSource::kPassFail: return "pass/fail";
    case StoreSource::kSameDifferent: return "same/different";
    case StoreSource::kMultiBaseline: return "multi-baseline";
    case StoreSource::kFull: return "full";
    case StoreSource::kFirstFail: return "first-fail";
    case StoreSource::kDetectionList: return "detection-list";
  }
  return "?";
}

SignatureStore SignatureStore::adopt(std::vector<std::uint64_t> image) {
  SignatureStore s;
  s.owned_ = std::move(image);
  s.base_ = reinterpret_cast<const std::byte*>(s.owned_.data());
  s.size_ = s.owned_.size() * 8;
  s.parse();
  return s;
}

SignatureStore SignatureStore::build(const PassFailDictionary& d) {
  ImageSpec spec;
  spec.kind = StoreKind::kPassFail;
  spec.source = StoreSource::kPassFail;
  spec.num_faults = d.num_faults();
  spec.num_tests = d.num_tests();
  spec.num_outputs = d.num_outputs();
  spec.sig_bits = d.num_tests();
  spec.fill_row = [&d](FaultId f, std::byte* dst) { fill_bit_row(d.row(f), dst); };
  std::size_t bytes = 0;
  auto image = make_image(spec, &bytes);
  (void)bytes;
  return adopt(std::move(image));
}

SignatureStore SignatureStore::build(const SameDifferentDictionary& d) {
  ImageSpec spec;
  spec.kind = StoreKind::kSameDifferent;
  spec.source = StoreSource::kSameDifferent;
  spec.num_faults = d.num_faults();
  spec.num_tests = d.num_tests();
  spec.num_outputs = d.num_outputs();
  spec.sig_bits = d.num_tests();
  spec.fill_row = [&d](FaultId f, std::byte* dst) { fill_bit_row(d.row(f), dst); };
  spec.baselines = ids_to_bytes(d.baselines().data(), d.baselines().size());
  std::size_t bytes = 0;
  return adopt(make_image(spec, &bytes));
}

SignatureStore SignatureStore::build(const MultiBaselineDictionary& d) {
  ImageSpec spec;
  spec.kind = StoreKind::kMultiBaseline;
  spec.source = StoreSource::kMultiBaseline;
  spec.num_faults = d.num_faults();
  spec.num_tests = d.num_tests();
  spec.num_outputs = d.num_outputs();
  spec.rank = d.baselines_per_test();
  spec.sig_bits = d.num_tests() * d.baselines_per_test();
  spec.fill_row = [&d](FaultId f, std::byte* dst) { fill_bit_row(d.row(f), dst); };
  // Per-test set sizes, then a fixed rank-wide id grid (unused slots 0).
  const std::size_t k = d.num_tests();
  const std::size_t r = d.baselines_per_test();
  std::vector<std::uint32_t> meta(k + k * r, 0);
  for (std::size_t t = 0; t < k; ++t) {
    const auto& bs = d.baselines()[t];
    meta[t] = static_cast<std::uint32_t>(bs.size());
    for (std::size_t l = 0; l < bs.size(); ++l) meta[k + t * r + l] = bs[l];
  }
  spec.baselines = ids_to_bytes(meta.data(), meta.size());
  std::size_t bytes = 0;
  return adopt(make_image(spec, &bytes));
}

SignatureStore SignatureStore::build(const FullDictionary& d) {
  ImageSpec spec;
  spec.kind = StoreKind::kFull;
  spec.source = StoreSource::kFull;
  spec.num_faults = d.num_faults();
  spec.num_tests = d.num_tests();
  spec.num_outputs = d.num_outputs();
  spec.sig_bits = static_cast<std::uint64_t>(d.num_tests()) * 32;
  spec.fill_row = [&d](FaultId f, std::byte* dst) {
    for (std::size_t t = 0; t < d.num_tests(); ++t)
      put32(dst, 4 * t, d.entry(f, t));
  };
  std::size_t bytes = 0;
  return adopt(make_image(spec, &bytes));
}

SignatureStore SignatureStore::build(const FirstFailDictionary& d) {
  ImageSpec spec;
  spec.kind = StoreKind::kPassFail;
  spec.source = StoreSource::kFirstFail;
  spec.num_faults = d.num_faults();
  spec.num_tests = d.num_tests();
  spec.num_outputs = d.num_outputs();
  spec.sig_bits = d.num_tests();
  spec.fill_row = [&d](FaultId f, std::byte* dst) {
    auto* words = reinterpret_cast<std::uint64_t*>(dst);
    for (std::size_t t = 0; t < d.num_tests(); ++t)
      if (d.entry(f, t) != 0) words[t >> 6] |= std::uint64_t{1} << (t & 63);
  };
  std::size_t bytes = 0;
  return adopt(make_image(spec, &bytes));
}

SignatureStore SignatureStore::build(const DetectionListDictionary& d,
                                     std::size_t num_outputs) {
  // Transpose the per-test detection lists into per-fault rows up front;
  // the projection is exactly the pass/fail bit matrix.
  std::vector<BitVec> rows(d.num_faults(), BitVec(d.num_tests()));
  for (std::size_t t = 0; t < d.num_tests(); ++t)
    for (FaultId f : d.detected_by(t)) rows[f].set(t, true);
  ImageSpec spec;
  spec.kind = StoreKind::kPassFail;
  spec.source = StoreSource::kDetectionList;
  spec.num_faults = d.num_faults();
  spec.num_tests = d.num_tests();
  spec.num_outputs = num_outputs;
  spec.sig_bits = d.num_tests();
  spec.fill_row = [&rows](FaultId f, std::byte* dst) {
    fill_bit_row(rows[f], dst);
  };
  std::size_t bytes = 0;
  return adopt(make_image(spec, &bytes));
}

SignatureStore SignatureStore::select_tests(
    const std::vector<std::size_t>& keep) const {
  if (keep.empty()) fail("select_tests: cannot keep zero test columns");
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] >= num_tests_)
      fail("select_tests: column " + std::to_string(keep[i]) +
           " out of range (store has " + std::to_string(num_tests_) +
           " tests)");
    if (i > 0 && keep[i] <= keep[i - 1])
      fail("select_tests: columns must be strictly ascending");
  }
  const std::size_t nk = keep.size();
  ImageSpec spec;
  spec.kind = kind_;
  spec.source = source_;
  spec.num_faults = num_faults_;
  spec.num_tests = nk;
  spec.num_outputs = num_outputs_;
  spec.rank = rank_;
  switch (kind_) {
    case StoreKind::kPassFail:
    case StoreKind::kSameDifferent: spec.sig_bits = nk; break;
    case StoreKind::kMultiBaseline: spec.sig_bits = nk * rank_; break;
    case StoreKind::kFull: spec.sig_bits = std::uint64_t{nk} * 32; break;
  }
  if (kind_ == StoreKind::kFull) {
    spec.fill_row = [this, &keep](FaultId f, std::byte* dst) {
      const ResponseId* src = full_row(f);
      for (std::size_t i = 0; i < keep.size(); ++i)
        put32(dst, 4 * i, src[keep[i]]);
    };
  } else {
    const std::size_t group = kind_ == StoreKind::kMultiBaseline ? rank_ : 1;
    spec.fill_row = [this, &keep, group](FaultId f, std::byte* dst) {
      auto* words = reinterpret_cast<std::uint64_t*>(dst);
      for (std::size_t i = 0; i < keep.size(); ++i)
        for (std::size_t l = 0; l < group; ++l) {
          if (!row_bit(f, keep[i] * group + l)) continue;
          const std::size_t bit = i * group + l;
          words[bit >> 6] |= std::uint64_t{1} << (bit & 63);
        }
    };
  }
  if (kind_ == StoreKind::kSameDifferent) {
    std::vector<ResponseId> bl(nk);
    for (std::size_t i = 0; i < nk; ++i) bl[i] = baselines()[keep[i]];
    spec.baselines = ids_to_bytes(bl.data(), bl.size());
  } else if (kind_ == StoreKind::kMultiBaseline) {
    const auto* counts = reinterpret_cast<const std::uint32_t*>(baselines_);
    const auto* grid =
        reinterpret_cast<const ResponseId*>(baselines_ + 4 * num_tests_);
    std::vector<std::uint32_t> meta(nk + nk * rank_, 0);
    for (std::size_t i = 0; i < nk; ++i) {
      meta[i] = counts[keep[i]];
      for (std::size_t l = 0; l < rank_; ++l)
        meta[nk + i * rank_ + l] = grid[keep[i] * rank_ + l];
    }
    spec.baselines = ids_to_bytes(meta.data(), meta.size());
  }
  std::size_t bytes = 0;
  return adopt(make_image(spec, &bytes));
}

SignatureStore SignatureStore::concat_tests(const SignatureStore& a,
                                            const SignatureStore& b) {
  if (a.kind_ != b.kind_)
    fail(std::string("concat_tests: kind mismatch (") +
         store_kind_name(a.kind_) + " vs " + store_kind_name(b.kind_) + ")");
  if (a.source_ != b.source_)
    fail(std::string("concat_tests: source mismatch (") +
         store_source_name(a.source_) + " vs " + store_source_name(b.source_) +
         ")");
  if (a.num_faults_ != b.num_faults_)
    fail("concat_tests: fault count mismatch (" +
         std::to_string(a.num_faults_) + " vs " +
         std::to_string(b.num_faults_) + ")");
  if (a.num_outputs_ != b.num_outputs_)
    fail("concat_tests: output count mismatch (" +
         std::to_string(a.num_outputs_) + " vs " +
         std::to_string(b.num_outputs_) + ")");
  if (a.rank_ != b.rank_)
    fail("concat_tests: rank mismatch (" + std::to_string(a.rank_) + " vs " +
         std::to_string(b.rank_) + ")");
  const std::size_t nt = a.num_tests_ + b.num_tests_;
  ImageSpec spec;
  spec.kind = a.kind_;
  spec.source = a.source_;
  spec.num_faults = a.num_faults_;
  spec.num_tests = nt;
  spec.num_outputs = a.num_outputs_;
  spec.rank = a.rank_;
  switch (a.kind_) {
    case StoreKind::kPassFail:
    case StoreKind::kSameDifferent: spec.sig_bits = nt; break;
    case StoreKind::kMultiBaseline: spec.sig_bits = nt * a.rank_; break;
    case StoreKind::kFull: spec.sig_bits = std::uint64_t{nt} * 32; break;
  }
  if (a.kind_ == StoreKind::kFull) {
    spec.fill_row = [&a, &b](FaultId f, std::byte* dst) {
      std::memcpy(dst, a.full_row(f), a.num_tests_ * 4);
      std::memcpy(dst + 4 * a.num_tests_, b.full_row(f), b.num_tests_ * 4);
    };
  } else {
    const std::size_t group =
        a.kind_ == StoreKind::kMultiBaseline ? a.rank_ : 1;
    spec.fill_row = [&a, &b, group](FaultId f, std::byte* dst) {
      auto* words = reinterpret_cast<std::uint64_t*>(dst);
      const std::size_t a_bits = a.num_tests_ * group;
      for (std::size_t i = 0; i < a_bits; ++i)
        if (a.row_bit(f, i)) words[i >> 6] |= std::uint64_t{1} << (i & 63);
      for (std::size_t i = 0; i < b.num_tests_ * group; ++i) {
        if (!b.row_bit(f, i)) continue;
        const std::size_t bit = a_bits + i;
        words[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      }
    };
  }
  if (a.kind_ == StoreKind::kSameDifferent) {
    std::vector<ResponseId> bl(nt);
    for (std::size_t t = 0; t < a.num_tests_; ++t) bl[t] = a.baselines()[t];
    for (std::size_t t = 0; t < b.num_tests_; ++t)
      bl[a.num_tests_ + t] = b.baselines()[t];
    spec.baselines = ids_to_bytes(bl.data(), bl.size());
  } else if (a.kind_ == StoreKind::kMultiBaseline) {
    const std::size_t r = a.rank_;
    std::vector<std::uint32_t> meta(nt + nt * r, 0);
    for (const SignatureStore* s : {&a, &b}) {
      const std::size_t off = s == &a ? 0 : a.num_tests_;
      const auto* counts =
          reinterpret_cast<const std::uint32_t*>(s->baselines_);
      const auto* grid = reinterpret_cast<const ResponseId*>(s->baselines_ +
                                                             4 * s->num_tests_);
      for (std::size_t t = 0; t < s->num_tests_; ++t) {
        meta[off + t] = counts[t];
        for (std::size_t l = 0; l < r; ++l)
          meta[nt + (off + t) * r + l] = grid[t * r + l];
      }
    }
    spec.baselines = ids_to_bytes(meta.data(), meta.size());
  }
  std::size_t bytes = 0;
  return adopt(make_image(spec, &bytes));
}

void SignatureStore::parse() {
  const std::byte* p = base_;
  if (size_ < kPageSize)
    fail("truncated header (" + std::to_string(size_) + " bytes, need " +
         std::to_string(kPageSize) + ")");
  if (std::memcmp(p + kOffMagic, kMagic, 8) != 0)
    fail("bad magic (not a signature store)");
  if (get32(p, kOffByteOrder) != kByteOrder) fail("byte-order mismatch");
  const std::uint32_t version = get32(p, kOffVersion);
  if (version != kVersion)
    fail("unsupported version " + std::to_string(version));
  Crc32 hc;
  hc.update(p, kOffHeaderCrc);
  if (hc.value() != get32(p, kOffHeaderCrc))
    fail("header checksum mismatch (stored " +
         std::to_string(get32(p, kOffHeaderCrc)) + ", computed " +
         std::to_string(hc.value()) + ")");

  const std::uint32_t kind = get32(p, kOffKind);
  if (kind > static_cast<std::uint32_t>(StoreKind::kFull))
    fail("bad kind " + std::to_string(kind));
  kind_ = static_cast<StoreKind>(kind);
  const std::uint32_t source = get32(p, kOffSource);
  if (source > static_cast<std::uint32_t>(StoreSource::kDetectionList))
    fail("bad source " + std::to_string(source));
  source_ = static_cast<StoreSource>(source);

  const std::uint64_t nf = get64(p, kOffNumFaults);
  const std::uint64_t nt = get64(p, kOffNumTests);
  const std::uint64_t m = get64(p, kOffNumOutputs);
  const std::uint64_t rank = get64(p, kOffRank);
  const std::uint64_t sig = get64(p, kOffSigBits);
  const std::uint64_t stride = get64(p, kOffRowStride);
  if (nf == 0 || nt == 0) fail("empty dimensions");
  if (nf > kMaxDim || nt > kMaxDim || m > kMaxDim) fail("dimensions too large");
  if (rank == 0 || rank > kMaxRank) fail("bad rank " + std::to_string(rank));
  if (kind_ != StoreKind::kMultiBaseline && rank != 1)
    fail("rank " + std::to_string(rank) + " on a non-multi-baseline store");

  std::uint64_t expected_sig = 0;
  switch (kind_) {
    case StoreKind::kPassFail:
    case StoreKind::kSameDifferent: expected_sig = nt; break;
    case StoreKind::kMultiBaseline: expected_sig = nt * rank; break;
    case StoreKind::kFull: expected_sig = nt * 32; break;
  }
  if (sig != expected_sig)
    fail("signature width mismatch (header says " + std::to_string(sig) +
         " bits, kind implies " + std::to_string(expected_sig) + ")");
  if (stride != round_up((sig + 7) / 8, kRowAlign))
    fail("bad row stride " + std::to_string(stride));

  if (get32(p, kOffSectionCount) != 2) fail("bad section count");
  const std::uint64_t rows_off = get64(p, kOffSections + 0);
  const std::uint64_t rows_size = get64(p, kOffSections + 8);
  const std::uint32_t rows_crc = get32(p, kOffSections + 16);
  const std::uint64_t bl_off = get64(p, kOffSections + kSectionEntry + 0);
  const std::uint64_t bl_size = get64(p, kOffSections + kSectionEntry + 8);
  const std::uint32_t bl_crc = get32(p, kOffSections + kSectionEntry + 16);

  if (rows_off != kPageSize)
    fail("bad rows section offset " + std::to_string(rows_off));
  if (rows_size > kMaxSectionBytes || bl_size > kMaxSectionBytes)
    fail("section too large");
  if (rows_size % stride != 0 || rows_size / stride != nf)
    fail("rows section size mismatch (" + std::to_string(rows_size) +
         " bytes for " + std::to_string(nf) + " rows of stride " +
         std::to_string(stride) + ")");

  std::uint64_t expected_bl = 0;
  switch (kind_) {
    case StoreKind::kPassFail:
    case StoreKind::kFull: expected_bl = 0; break;
    case StoreKind::kSameDifferent: expected_bl = 4 * nt; break;
    case StoreKind::kMultiBaseline: expected_bl = 4 * nt + 4 * nt * rank; break;
  }
  if (bl_size != expected_bl)
    fail("baselines section size mismatch (" + std::to_string(bl_size) +
         " bytes, kind implies " + std::to_string(expected_bl) + ")");
  const std::uint64_t rows_pad = round_up(rows_size, kPageSize);
  if (bl_off != kPageSize + rows_pad)
    fail("bad baselines section offset " + std::to_string(bl_off));
  const std::uint64_t total = bl_off + round_up(bl_size, kPageSize);
  if (size_ < total)
    fail("file truncated (" + std::to_string(size_) + " bytes, need " +
         std::to_string(total) + ")");
  if (size_ > total)
    fail("trailing bytes after the last section (" + std::to_string(size_) +
         " bytes, expected " + std::to_string(total) + ")");

  Crc32 rc;
  rc.update(p + rows_off, rows_pad);
  if (rc.value() != rows_crc)
    fail("rows section checksum mismatch (stored " + std::to_string(rows_crc) +
         ", computed " + std::to_string(rc.value()) + ")");
  Crc32 bc;
  bc.update(p + bl_off, round_up(bl_size, kPageSize));
  if (bc.value() != bl_crc)
    fail("baselines section checksum mismatch (stored " +
         std::to_string(bl_crc) + ", computed " + std::to_string(bc.value()) +
         ")");

  num_faults_ = static_cast<std::size_t>(nf);
  num_tests_ = static_cast<std::size_t>(nt);
  num_outputs_ = static_cast<std::size_t>(m);
  rank_ = static_cast<std::size_t>(rank);
  sig_bits_ = sig;
  row_stride_ = stride;
  rows_ = base_ + rows_off;
  baselines_ = base_ + bl_off;
}

void SignatureStore::write(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(base_),
            static_cast<std::streamsize>(size_));
  if (!out) fail("write failed (stream went bad mid-write)");
}

void SignatureStore::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open " + path + " for writing");
  write(out);
  out.flush();
  if (!out) fail("write to " + path + " failed after flush");
}

std::string SignatureStore::to_bytes() const {
  return std::string(reinterpret_cast<const char*>(base_), size_);
}

SignatureStore SignatureStore::from_bytes(const std::string& bytes) {
  std::vector<std::uint64_t> image((bytes.size() + 7) / 8, 0);
  std::memcpy(image.data(), bytes.data(), bytes.size());
  SignatureStore s;
  s.owned_ = std::move(image);
  s.base_ = reinterpret_cast<const std::byte*>(s.owned_.data());
  s.size_ = bytes.size();
  s.parse();
  return s;
}

SignatureStore SignatureStore::load(std::istream& in) {
  std::string bytes;
  char buf[1 << 16];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    bytes.append(buf, static_cast<std::size_t>(in.gcount()));
    if (in.bad()) break;
  }
  if (in.bad()) fail("read failed (stream went bad mid-read)");
  return from_bytes(bytes);
}

SignatureStore SignatureStore::load_file(const std::string& path,
                                         StoreLoadMode mode) {
#ifdef SDDICT_HAS_MMAP
  if (mode != StoreLoadMode::kStream) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (mode == StoreLoadMode::kMmap) fail("cannot open " + path);
    } else {
      struct stat st{};
      if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        if (mode == StoreLoadMode::kMmap)
          fail("truncated header (0 bytes, need " + std::to_string(kPageSize) +
               ")");
      } else {
        const std::size_t size = static_cast<std::size_t>(st.st_size);
        void* m = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (m == MAP_FAILED) {
          if (mode == StoreLoadMode::kMmap) fail("mmap of " + path + " failed");
        } else {
          SignatureStore s;
          s.mapping_ = std::shared_ptr<const void>(
              m, [size](const void* q) { ::munmap(const_cast<void*>(q), size); });
          s.base_ = static_cast<const std::byte*>(m);
          s.size_ = size;
          s.mapped_ = true;
          s.parse();
          return s;
        }
      }
    }
    // kAuto falls through to the portable path on any mmap-side failure.
  }
#else
  if (mode == StoreLoadMode::kMmap)
    fail("mmap is not available on this platform");
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  return load(in);
}

PassFailDictionary SignatureStore::to_passfail() const {
  if (kind_ != StoreKind::kPassFail)
    fail(std::string("to_passfail on a ") + store_kind_name(kind_) + " store");
  std::vector<BitVec> rows(num_faults_, BitVec(num_tests_));
  for (FaultId f = 0; f < num_faults_; ++f) {
    auto& words = rows[f].mutable_words();
    std::memcpy(words.data(), row_words(f), words.size() * 8);
    rows[f].normalize_tail();
  }
  return PassFailDictionary::from_rows(std::move(rows), num_tests_,
                                       num_outputs_);
}

SameDifferentDictionary SignatureStore::to_samediff() const {
  if (kind_ != StoreKind::kSameDifferent)
    fail(std::string("to_samediff on a ") + store_kind_name(kind_) + " store");
  std::vector<BitVec> rows(num_faults_, BitVec(num_tests_));
  for (FaultId f = 0; f < num_faults_; ++f) {
    auto& words = rows[f].mutable_words();
    std::memcpy(words.data(), row_words(f), words.size() * 8);
    rows[f].normalize_tail();
  }
  std::vector<ResponseId> bl(baselines(), baselines() + num_tests_);
  return SameDifferentDictionary::from_parts(std::move(rows), std::move(bl),
                                             num_outputs_);
}

MultiBaselineDictionary SignatureStore::to_multibaseline() const {
  if (kind_ != StoreKind::kMultiBaseline)
    fail(std::string("to_multibaseline on a ") + store_kind_name(kind_) +
         " store");
  std::vector<BitVec> rows(num_faults_, BitVec(num_tests_ * rank_));
  for (FaultId f = 0; f < num_faults_; ++f) {
    auto& words = rows[f].mutable_words();
    std::memcpy(words.data(), row_words(f), words.size() * 8);
    rows[f].normalize_tail();
  }
  std::vector<std::vector<ResponseId>> bl(num_tests_);
  for (std::size_t t = 0; t < num_tests_; ++t) {
    const auto [ids, count] = baseline_set(t);
    if (count > rank_)
      fail("baseline set of test " + std::to_string(t) + " larger than rank");
    bl[t].assign(ids, ids + count);
  }
  return MultiBaselineDictionary::from_parts(std::move(rows), std::move(bl),
                                             rank_, num_outputs_);
}

FullDictionary SignatureStore::to_full() const {
  if (kind_ != StoreKind::kFull)
    fail(std::string("to_full on a ") + store_kind_name(kind_) + " store");
  std::vector<ResponseId> entries(num_faults_ * num_tests_);
  for (FaultId f = 0; f < num_faults_; ++f)
    std::memcpy(entries.data() + static_cast<std::size_t>(f) * num_tests_,
                full_row(f), num_tests_ * 4);
  return FullDictionary::from_entries(std::move(entries), num_faults_,
                                      num_tests_, num_outputs_);
}

}  // namespace sddict
