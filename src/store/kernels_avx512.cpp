// AVX-512 kernels: 512-bit lanes, one VPTERNLOGQ for (row ^ obs) & care
// and a native per-word popcount (VPOPCNTQ). Requires F+BW+VL+VPOPCNTDQ at
// runtime — CPUs with a narrower AVX-512 subset are served by the AVX2
// table instead of an emulated vector popcount (dispatch() policy).
// Compiled with the matching -mavx512* flags in its own translation unit.
//
// Tails use maskz loads: architecturally, masked-off lanes are never
// touched, so reading the last partial 8-word group of an unpadded
// observation vector cannot fault or trip a sanitizer.
#include "store/kernels.h"

#if defined(SDDICT_KERNELS_AVX512)

#include <immintrin.h>

namespace sddict::kernels {

namespace {

// imm8 for (A ^ B) & C: (0xF0 ^ 0xCC) & 0xAA.
constexpr int kXorAndImm = 0x28;

std::uint32_t avx512_hamming(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t nwords) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i v = _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  if (i < nwords) {
    const __mmask8 m = static_cast<__mmask8>((1u << (nwords - i)) - 1);
    const __m512i v = _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                       _mm512_maskz_loadu_epi64(m, b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc));
}

std::uint32_t avx512_masked_hamming(const std::uint64_t* row,
                                    const std::uint64_t* obs,
                                    const std::uint64_t* care,
                                    std::size_t nwords) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= nwords; i += 8) {
    const __m512i v = _mm512_ternarylogic_epi64(
        _mm512_loadu_si512(row + i), _mm512_loadu_si512(obs + i),
        _mm512_loadu_si512(care + i), kXorAndImm);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  if (i < nwords) {
    const __mmask8 m = static_cast<__mmask8>((1u << (nwords - i)) - 1);
    const __m512i v = _mm512_ternarylogic_epi64(
        _mm512_maskz_loadu_epi64(m, row + i),
        _mm512_maskz_loadu_epi64(m, obs + i),
        _mm512_maskz_loadu_epi64(m, care + i), kXorAndImm);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<std::uint32_t>(_mm512_reduce_add_epi64(acc));
}

std::uint32_t avx512_masked_symbol_mismatches(const std::uint32_t* row,
                                              const std::uint32_t* obs,
                                              const std::uint8_t* care,
                                              std::size_t n) {
  const __m512i zero = _mm512_setzero_si512();
  std::uint32_t mism = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 neq = _mm512_cmpneq_epu32_mask(
        _mm512_loadu_si512(row + i), _mm512_loadu_si512(obs + i));
    const __m512i c32 = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(care + i)));
    const __mmask16 cared = _mm512_cmpneq_epu32_mask(c32, zero);
    mism += static_cast<std::uint32_t>(
        __builtin_popcount(static_cast<unsigned>(neq & cared)));
  }
  if (i < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - i)) - 1);
    const __mmask16 neq = _mm512_mask_cmpneq_epu32_mask(
        m, _mm512_maskz_loadu_epi32(m, row + i),
        _mm512_maskz_loadu_epi32(m, obs + i));
    const __m512i c32 = _mm512_cvtepu8_epi32(
        _mm_maskz_loadu_epi8(m, care + i));
    const __mmask16 cared = _mm512_mask_cmpneq_epu32_mask(m, c32, zero);
    mism += static_cast<std::uint32_t>(
        __builtin_popcount(static_cast<unsigned>(neq & cared)));
  }
  return mism;
}

constexpr KernelTable kAvx512Table = {
    "avx512",
    &avx512_hamming,
    &avx512_masked_hamming,
    &avx512_masked_symbol_mismatches,
};

}  // namespace

const KernelTable* avx512_kernels() {
  return __builtin_cpu_supports("avx512f") &&
                 __builtin_cpu_supports("avx512bw") &&
                 __builtin_cpu_supports("avx512vl") &&
                 __builtin_cpu_supports("avx512vpopcntdq")
             ? &kAvx512Table
             : nullptr;
}

}  // namespace sddict::kernels

#endif  // SDDICT_KERNELS_AVX512
