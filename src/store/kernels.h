// Word-parallel signature-matching kernels: the cycles of a diagnosis
// query go into Hamming distances between an observed signature and every
// fault's dictionary row, so these run 64 positions per std::popcount
// instead of one per branch. The masked variants implement the engine's
// don't-care semantics (diag/engine.h): a position whose care bit is 0
// never counts as a mismatch, whatever the row holds.
//
// The *_reference functions are the legacy per-position loops, kept as the
// differential oracle: bench_throughput self-checks that packed and
// reference rankings are identical before reporting a speedup, and the
// store tests compare the two on random inputs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sddict::kernels {

// Bit i of a packed row (BitVec word layout: bit i lives in word i>>6 at
// position i&63).
inline bool bit_at(const std::uint64_t* words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}

// popcount(a ^ b) over nwords 64-bit lanes.
std::uint32_t hamming(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t nwords);

// popcount((row ^ obs) & care) over nwords lanes: mismatches over the
// cared positions only.
std::uint32_t masked_hamming(const std::uint64_t* row, const std::uint64_t* obs,
                             const std::uint64_t* care, std::size_t nwords);

// Symbol-lane mismatch count for id-valued rows (full dictionary): the
// number of positions t < n with care[t] != 0 and row[t] != obs[t]. The
// comparison is branch-free per lane so the compiler can vectorize it.
std::uint32_t masked_symbol_mismatches(const std::uint32_t* row,
                                       const std::uint32_t* obs,
                                       const std::uint8_t* care, std::size_t n);

// Legacy per-position loops (one branch per bit/symbol).
std::uint32_t masked_hamming_reference(const std::uint64_t* row,
                                       const std::uint64_t* obs,
                                       const std::uint64_t* care,
                                       std::size_t nbits);
std::uint32_t masked_symbol_mismatches_reference(const std::uint32_t* row,
                                                 const std::uint32_t* obs,
                                                 const std::uint8_t* care,
                                                 std::size_t n);

}  // namespace sddict::kernels
