// Signature-matching kernels with runtime SIMD dispatch: the cycles of a
// diagnosis query go into Hamming distances between an observed signature
// and every fault's dictionary row, so these run as wide as the hardware
// allows. Three layers, each the correctness oracle of the one above:
//
//   per-bit *_reference loops  — the differential oracle (one branch per
//     position; bench_throughput and tests/test_store.cpp compare every
//     faster path against these before trusting a speedup);
//   scalar word-parallel loops — 64 positions per std::popcount; the
//     always-available fallback, and the oracle the SIMD variants are
//     differentially tested against on every tail width;
//   SIMD variants              — AVX2 (256-bit, shuffle-LUT popcount),
//     AVX-512 (512-bit, VPOPCNTDQ + one ternary-logic op per 8 words) and
//     NEON (128-bit, vcnt), each in its own translation unit compiled with
//     the matching -m flags.
//
// dispatch() picks the widest variant the running CPU supports — detected
// once via CPUID (__builtin_cpu_supports) on x86 / architecturally
// guaranteed NEON on aarch64 — and callers that care hoist the table out
// of their row loop. The free functions masked_hamming() etc. route
// through the dispatched table, so every existing caller inherits the
// SIMD path without code changes. SDDICT_KERNELS=scalar|avx2|avx512|neon
// overrides the choice (tests, CI, A/B timing); an unsupported override
// falls back to auto-detection with a warning rather than failing.
//
// The masked variants implement the engine's don't-care semantics
// (diag/engine.h): a position whose care bit/byte is 0 never counts as a
// mismatch, whatever the row holds; any non-zero care byte means "cared".
//
// The *_bounded wrappers are the top-k pruning primitive: they accumulate
// per fixed-size block (8 words / 64 symbol lanes) and abandon the row as
// soon as the running partial count — a lower bound on the final count,
// since counts only grow — exceeds the caller's limit. A return value
// <= limit is the exact count; a value > limit only promises the true
// count is also > limit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sddict::kernels {

// Bit i of a packed row (BitVec word layout: bit i lives in word i>>6 at
// position i&63).
inline bool bit_at(const std::uint64_t* words, std::size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}

// One implementation family of the hot kernels. All three functions of a
// table agree bit-for-bit with the scalar table (and the per-bit
// references) on every input; only the instructions differ.
struct KernelTable {
  const char* name;  // "scalar", "avx2", "avx512", "neon"
  // popcount(a ^ b) over nwords 64-bit lanes.
  std::uint32_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t nwords);
  // popcount((row ^ obs) & care) over nwords lanes: mismatches over the
  // cared positions only.
  std::uint32_t (*masked_hamming)(const std::uint64_t* row,
                                  const std::uint64_t* obs,
                                  const std::uint64_t* care,
                                  std::size_t nwords);
  // Symbol-lane mismatch count for id-valued rows (full dictionary): the
  // number of positions t < n with care[t] != 0 and row[t] != obs[t].
  std::uint32_t (*masked_symbol_mismatches)(const std::uint32_t* row,
                                            const std::uint32_t* obs,
                                            const std::uint8_t* care,
                                            std::size_t n);
};

// The scalar word-parallel table: always available, the SIMD variants'
// differential oracle.
const KernelTable& scalar_kernels();

// SIMD tables, or nullptr when the variant was compiled out (non-x86 /
// non-ARM build) or the running CPU lacks the required extensions. The
// AVX-512 table requires F+BW+VL+VPOPCNTDQ — on CPUs with a narrower
// AVX-512 subset the dispatcher drops to AVX2 rather than emulating a
// vector popcount.
const KernelTable* avx2_kernels();
const KernelTable* avx512_kernels();
const KernelTable* neon_kernels();

// Every table usable on this machine, scalar first then in increasing
// width — the sweep the differential tests and bench_throughput iterate.
std::vector<const KernelTable*> supported_kernels();

// The table every query runs on: the widest supported variant, resolved
// once on first call (thereafter a plain load). Honors SDDICT_KERNELS.
const KernelTable& dispatch();

// Compatibility entry points: route through dispatch(). Hot loops should
// hoist `const KernelTable& k = dispatch();` instead of paying the
// first-call guard per row.
inline std::uint32_t hamming(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t nwords) {
  return dispatch().hamming(a, b, nwords);
}
inline std::uint32_t masked_hamming(const std::uint64_t* row,
                                    const std::uint64_t* obs,
                                    const std::uint64_t* care,
                                    std::size_t nwords) {
  return dispatch().masked_hamming(row, obs, care, nwords);
}
inline std::uint32_t masked_symbol_mismatches(const std::uint32_t* row,
                                              const std::uint32_t* obs,
                                              const std::uint8_t* care,
                                              std::size_t n) {
  return dispatch().masked_symbol_mismatches(row, obs, care, n);
}

// Block sizes of the bounded kernels' early-exit checks. 8 words = 512
// bits = one AVX-512 iteration; 64 lanes keeps the check off the inner
// SIMD loop for the symbol kernel.
inline constexpr std::size_t kBoundedBlockWords = 8;
inline constexpr std::size_t kBoundedBlockLanes = 64;

// Bounded masked Hamming: exact count when the result is <= limit;
// abandons the row (returning the partial count, > limit) as soon as the
// per-block prefix sum exceeds limit. With limit == UINT32_MAX this is
// exactly k.masked_hamming over the whole row.
inline std::uint32_t masked_hamming_bounded(
    const KernelTable& k, const std::uint64_t* row, const std::uint64_t* obs,
    const std::uint64_t* care, std::size_t nwords, std::uint32_t limit) {
  if (limit == ~std::uint32_t{0}) return k.masked_hamming(row, obs, care, nwords);
  std::uint32_t n = 0;
  std::size_t i = 0;
  for (; i + kBoundedBlockWords <= nwords; i += kBoundedBlockWords) {
    n += k.masked_hamming(row + i, obs + i, care + i, kBoundedBlockWords);
    if (n > limit) return n;
  }
  if (i < nwords) n += k.masked_hamming(row + i, obs + i, care + i, nwords - i);
  return n;
}

// Bounded symbol-mismatch count; same contract over u32 lanes.
inline std::uint32_t masked_symbol_mismatches_bounded(
    const KernelTable& k, const std::uint32_t* row, const std::uint32_t* obs,
    const std::uint8_t* care, std::size_t n, std::uint32_t limit) {
  if (limit == ~std::uint32_t{0})
    return k.masked_symbol_mismatches(row, obs, care, n);
  std::uint32_t mism = 0;
  std::size_t i = 0;
  for (; i + kBoundedBlockLanes <= n; i += kBoundedBlockLanes) {
    mism += k.masked_symbol_mismatches(row + i, obs + i, care + i,
                                       kBoundedBlockLanes);
    if (mism > limit) return mism;
  }
  if (i < n) mism += k.masked_symbol_mismatches(row + i, obs + i, care + i,
                                                n - i);
  return mism;
}

// Legacy per-position loops (one branch per bit/symbol): the differential
// oracle every table above is gated against.
std::uint32_t masked_hamming_reference(const std::uint64_t* row,
                                       const std::uint64_t* obs,
                                       const std::uint64_t* care,
                                       std::size_t nbits);
std::uint32_t masked_symbol_mismatches_reference(const std::uint32_t* row,
                                                 const std::uint32_t* obs,
                                                 const std::uint8_t* care,
                                                 std::size_t n);

}  // namespace sddict::kernels
