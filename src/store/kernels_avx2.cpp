// AVX2 kernels: 256-bit lanes, popcount via the nibble shuffle-LUT +
// psadbw reduction (Mula's method — no scalar popcount in the main loop).
// Compiled with -mavx2 in its own translation unit so the rest of the
// library stays baseline-ISA; runtime selection happens in dispatch().
//
// Row pointers are 64-byte aligned (SignatureStore contract) but the
// observation/care operands come from plain BitVec vectors, so every load
// is unaligned (_mm256_loadu_si256) — on every AVX2 core this costs
// nothing when the address happens to be aligned.
#include "store/kernels.h"

#if defined(SDDICT_KERNELS_AVX2)

#include <immintrin.h>

#include <bit>

namespace sddict::kernels {

namespace {

// Sums the four u64 lanes of an accumulator.
inline std::uint32_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(_mm_extract_epi64(s, 0)) +
      static_cast<std::uint64_t>(_mm_extract_epi64(s, 1)));
}

// Per-byte popcount of v via two 16-entry nibble lookups.
inline __m256i popcount_epi8(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

std::uint32_t avx2_hamming(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(popcount_epi8(v),
                                           _mm256_setzero_si256()));
  }
  std::uint32_t n = hsum_epi64(acc);
  for (; i < nwords; ++i)
    n += static_cast<std::uint32_t>(std::popcount(a[i] ^ b[i]));
  return n;
}

std::uint32_t avx2_masked_hamming(const std::uint64_t* row,
                                  const std::uint64_t* obs,
                                  const std::uint64_t* care,
                                  std::size_t nwords) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(obs + i))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(care + i)));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(popcount_epi8(v),
                                           _mm256_setzero_si256()));
  }
  std::uint32_t n = hsum_epi64(acc);
  for (; i < nwords; ++i)
    n += static_cast<std::uint32_t>(std::popcount((row[i] ^ obs[i]) & care[i]));
  return n;
}

std::uint32_t avx2_masked_symbol_mismatches(const std::uint32_t* row,
                                            const std::uint32_t* obs,
                                            const std::uint8_t* care,
                                            std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  // acc counts per u32 lane via mask subtraction (an all-ones mismatch
  // lane adds 1); safe for any realistic n (< 2^32 lanes per query).
  __m256i acc = zero;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i eq = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(obs + i)));
    const __m256i c32 = _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(care + i)));
    const __m256i uncared = _mm256_cmpeq_epi32(c32, zero);
    // Mismatch <=> cared and not equal: ~(eq | uncared).
    const __m256i mism = _mm256_xor_si256(_mm256_or_si256(eq, uncared),
                                          _mm256_set1_epi32(-1));
    acc = _mm256_sub_epi32(acc, mism);
  }
  // Reduce the eight u32 lane counters.
  const __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  const __m128i s2 = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
  const __m128i s3 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0xb1));
  std::uint32_t mism = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s3));
  for (; i < n; ++i)
    mism += static_cast<std::uint32_t>((care[i] != 0) & (row[i] != obs[i]));
  return mism;
}

constexpr KernelTable kAvx2Table = {
    "avx2",
    &avx2_hamming,
    &avx2_masked_hamming,
    &avx2_masked_symbol_mismatches,
};

}  // namespace

const KernelTable* avx2_kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
}

}  // namespace sddict::kernels

#endif  // SDDICT_KERNELS_AVX2
