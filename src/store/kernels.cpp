#include "store/kernels.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "util/log.h"

namespace sddict::kernels {

namespace {

// ------------------------------------------------------- scalar fallback --
// Word-parallel loops: 64 positions per std::popcount. These were the hot
// kernels before the SIMD layer and are now the always-available fallback
// and the SIMD variants' differential oracle.

std::uint32_t scalar_hamming(const std::uint64_t* a, const std::uint64_t* b,
                             std::size_t nwords) {
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < nwords; ++i)
    n += static_cast<std::uint32_t>(std::popcount(a[i] ^ b[i]));
  return n;
}

std::uint32_t scalar_masked_hamming(const std::uint64_t* row,
                                    const std::uint64_t* obs,
                                    const std::uint64_t* care,
                                    std::size_t nwords) {
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < nwords; ++i)
    n += static_cast<std::uint32_t>(std::popcount((row[i] ^ obs[i]) & care[i]));
  return n;
}

std::uint32_t scalar_masked_symbol_mismatches(const std::uint32_t* row,
                                              const std::uint32_t* obs,
                                              const std::uint8_t* care,
                                              std::size_t n) {
  std::uint32_t mism = 0;
  // (care[t] != 0), not care[t] itself: any non-zero care byte means the
  // lane is cared. Masking with the raw byte dropped mismatches for even
  // care values (2, 0x80, ...) — the contract every SIMD variant inherits
  // is the reference loop's, and this stays branch-free.
  for (std::size_t t = 0; t < n; ++t)
    mism += static_cast<std::uint32_t>((care[t] != 0) & (row[t] != obs[t]));
  return mism;
}

constexpr KernelTable kScalarTable = {
    "scalar",
    &scalar_hamming,
    &scalar_masked_hamming,
    &scalar_masked_symbol_mismatches,
};

const KernelTable* pick(const char* forced) {
  if (forced != nullptr && *forced != '\0') {
    for (const KernelTable* t : supported_kernels())
      if (std::strcmp(t->name, forced) == 0) return t;
    log_message(LogLevel::kWarn, std::string("kernels: SDDICT_KERNELS=") +
                                     forced +
                                     " is not supported on this machine; "
                                     "auto-detecting");
  }
  if (const KernelTable* t = avx512_kernels()) return t;
  if (const KernelTable* t = avx2_kernels()) return t;
  if (const KernelTable* t = neon_kernels()) return t;
  return &scalar_kernels();
}

}  // namespace

const KernelTable& scalar_kernels() { return kScalarTable; }

#if !defined(SDDICT_KERNELS_AVX2)
const KernelTable* avx2_kernels() { return nullptr; }
#endif
#if !defined(SDDICT_KERNELS_AVX512)
const KernelTable* avx512_kernels() { return nullptr; }
#endif
#if !defined(SDDICT_KERNELS_NEON)
const KernelTable* neon_kernels() { return nullptr; }
#endif

std::vector<const KernelTable*> supported_kernels() {
  std::vector<const KernelTable*> tables{&scalar_kernels()};
  if (const KernelTable* t = neon_kernels()) tables.push_back(t);
  if (const KernelTable* t = avx2_kernels()) tables.push_back(t);
  if (const KernelTable* t = avx512_kernels()) tables.push_back(t);
  return tables;
}

const KernelTable& dispatch() {
  // Resolved once; std::getenv at static-init time is safe here because the
  // first caller is always a query path, never a static constructor.
  static const KernelTable* const chosen = pick(std::getenv("SDDICT_KERNELS"));
  return *chosen;
}

// ------------------------------------------------------ per-bit oracles --

std::uint32_t masked_hamming_reference(const std::uint64_t* row,
                                       const std::uint64_t* obs,
                                       const std::uint64_t* care,
                                       std::size_t nbits) {
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < nbits; ++i)
    if (bit_at(care, i) && bit_at(row, i) != bit_at(obs, i)) ++n;
  return n;
}

std::uint32_t masked_symbol_mismatches_reference(const std::uint32_t* row,
                                                 const std::uint32_t* obs,
                                                 const std::uint8_t* care,
                                                 std::size_t n) {
  std::uint32_t mism = 0;
  for (std::size_t t = 0; t < n; ++t)
    if (care[t] && row[t] != obs[t]) ++mism;
  return mism;
}

}  // namespace sddict::kernels
