#include "store/kernels.h"

#include <bit>

namespace sddict::kernels {

std::uint32_t hamming(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t nwords) {
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < nwords; ++i)
    n += static_cast<std::uint32_t>(std::popcount(a[i] ^ b[i]));
  return n;
}

std::uint32_t masked_hamming(const std::uint64_t* row, const std::uint64_t* obs,
                             const std::uint64_t* care, std::size_t nwords) {
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < nwords; ++i)
    n += static_cast<std::uint32_t>(std::popcount((row[i] ^ obs[i]) & care[i]));
  return n;
}

std::uint32_t masked_symbol_mismatches(const std::uint32_t* row,
                                       const std::uint32_t* obs,
                                       const std::uint8_t* care,
                                       std::size_t n) {
  std::uint32_t mism = 0;
  for (std::size_t t = 0; t < n; ++t)
    mism += static_cast<std::uint32_t>(care[t] & (row[t] != obs[t]));
  return mism;
}

std::uint32_t masked_hamming_reference(const std::uint64_t* row,
                                       const std::uint64_t* obs,
                                       const std::uint64_t* care,
                                       std::size_t nbits) {
  std::uint32_t n = 0;
  for (std::size_t i = 0; i < nbits; ++i)
    if (bit_at(care, i) && bit_at(row, i) != bit_at(obs, i)) ++n;
  return n;
}

std::uint32_t masked_symbol_mismatches_reference(const std::uint32_t* row,
                                                 const std::uint32_t* obs,
                                                 const std::uint8_t* care,
                                                 std::size_t n) {
  std::uint32_t mism = 0;
  for (std::size_t t = 0; t < n; ++t)
    if (care[t] && row[t] != obs[t]) ++mism;
  return mism;
}

}  // namespace sddict::kernels
