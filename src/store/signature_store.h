// Immutable, bit-packed on-disk signature store — the deployment artifact
// of a fault dictionary. Construction (src/core, src/dict) happens once,
// offline; a store is what a tester-floor service loads and serves queries
// from, so the format is built for loading, not editing:
//
//   page 0 (4096 B, little-endian, fixed offsets):
//     0    char[8]  magic "SDSTORE1"
//     8    u32      byte-order marker 0x01020304 (rejects cross-endian files)
//     12   u32      version (1)
//     16   u32      kind    (row layout: pass/fail, same/diff, multi, full)
//     20   u32      source  (dictionary type the store was built from)
//     24   u64      num_faults        40  u64  num_outputs
//     32   u64      num_tests         48  u64  rank (1 unless multibaseline)
//     56   u64      signature_bits (bits per row)
//     64   u64      row_stride_bytes (multiple of 64)
//     72   u32      section_count (2)
//     80   2 x {u64 offset, u64 size, u32 crc32, u32 pad}  section table
//     4092 u32      crc32 of bytes [0, 4092)
//   section 0: rows — num_faults rows, row-major, each row_stride_bytes
//     apart; bit i of a row lives in 64-bit word i>>6 at position i&63
//     (BitVec layout), so a row is directly a kernel operand. kFull rows
//     are u32 response-id lanes instead of bits.
//   section 1: baselines — per-test metadata (layout depends on kind).
//   Sections start page-aligned and are padded to a page; each section's
//   CRC covers its padded extent, so EVERY byte of the file is covered by
//   exactly one checksum: any flip or truncation anywhere surfaces as a
//   named std::runtime_error, never a crash or a silent wrong answer.
//
// Rows sit at page-aligned offsets with a 64-byte-aligned stride, so a
// zero-copy mmap (POSIX; a portable read-whole-file fallback exists) hands
// out 64-byte-aligned row pointers and the kernel never touches a split
// word. Stores are buildable from every dictionary type: pass/fail,
// same/different, multi-baseline and full natively; first-fail and
// detection-list via their pass/fail projection (their per-test bit is
// exactly "detects the fault"). The four native kinds reconstruct their
// dictionary objects back (to_passfail() & co), which is what the serving
// layer's equivalence guarantee rests on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dict/detlist_dict.h"
#include "dict/firstfail_dict.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"

namespace sddict {

// Row layout of a store. kPassFail / kSameDifferent rows are num_tests
// bits, kMultiBaseline rows num_tests*rank bits, kFull rows num_tests u32
// response-id lanes.
enum class StoreKind : std::uint32_t {
  kPassFail = 0,
  kSameDifferent,
  kMultiBaseline,
  kFull,
};

// What the store was built from (provenance; first-fail and detection-list
// stores have kind kPassFail).
enum class StoreSource : std::uint32_t {
  kPassFail = 0,
  kSameDifferent,
  kMultiBaseline,
  kFull,
  kFirstFail,
  kDetectionList,
};

const char* store_kind_name(StoreKind k);
const char* store_source_name(StoreSource s);

enum class StoreLoadMode {
  kAuto,    // mmap when the platform has it, stream otherwise
  kMmap,    // zero-copy mmap; throws where unsupported or on mmap failure
  kStream,  // portable read-whole-file
};

class SignatureStore {
 public:
  static constexpr std::size_t kPageSize = 4096;
  static constexpr std::size_t kRowAlign = 64;

  // Builders. Every defect in the inputs (empty dictionary) throws
  // std::runtime_error. The built store is immediately re-validated
  // through the same parser loads go through, so writer and reader can
  // never disagree about the format.
  static SignatureStore build(const PassFailDictionary& d);
  static SignatureStore build(const SameDifferentDictionary& d);
  static SignatureStore build(const MultiBaselineDictionary& d);
  static SignatureStore build(const FullDictionary& d);
  // Pass/fail projections: entry != 0 / membership of the detection list.
  static SignatureStore build(const FirstFailDictionary& d);
  static SignatureStore build(const DetectionListDictionary& d,
                              std::size_t num_outputs);

  // I/O. write() throws on a failed stream (torn-file discipline of
  // dict/serialize.h); write_file() re-checks the stream after the final
  // flush. Loaders validate everything before the first accessor can run.
  void write(std::ostream& out) const;
  void write_file(const std::string& path) const;
  static SignatureStore load(std::istream& in);
  static SignatureStore load_file(const std::string& path,
                                  StoreLoadMode mode = StoreLoadMode::kAuto);
  // In-memory round trip (tests, fuzzers).
  std::string to_bytes() const;
  static SignatureStore from_bytes(const std::string& bytes);

  // Column surgery (src/compact, delta-store repository). Both go through
  // the same image builder as build(), so the result is byte-identical to
  // building the equivalent dictionary over the same test columns
  // directly — the identity the compaction and delta-materialization
  // gates rest on. select_tests keeps the listed columns (strictly
  // ascending, in range, at least one), preserving kind/source/rank and
  // the per-test baseline metadata of the kept columns. concat_tests
  // appends b's columns after a's; kind, source, num_faults, num_outputs
  // and rank must all match. Defects throw std::runtime_error.
  SignatureStore select_tests(const std::vector<std::size_t>& keep) const;
  static SignatureStore concat_tests(const SignatureStore& a,
                                     const SignatureStore& b);

  SignatureStore(SignatureStore&&) noexcept = default;
  SignatureStore& operator=(SignatureStore&&) noexcept = default;
  SignatureStore(const SignatureStore&) = delete;
  SignatureStore& operator=(const SignatureStore&) = delete;

  StoreKind kind() const { return kind_; }
  StoreSource source() const { return source_; }
  bool mapped() const { return mapped_; }
  std::size_t size_bytes() const { return size_; }
  // The whole validated image (repository CRC verification).
  const std::byte* data() const { return base_; }

  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return num_tests_; }
  std::size_t num_outputs() const { return num_outputs_; }
  std::size_t rank() const { return rank_; }
  std::uint64_t signature_bits() const { return sig_bits_; }
  std::size_t words_per_row() const {
    return static_cast<std::size_t>(row_stride_) / 8;
  }

  // Zero-copy row access (the kernel operand). 64-byte aligned when the
  // store is mmap'd or freshly built; at least 8-byte aligned always.
  const std::uint64_t* row_words(FaultId f) const {
    return reinterpret_cast<const std::uint64_t*>(
        rows_ + static_cast<std::uint64_t>(f) * row_stride_);
  }
  bool row_bit(FaultId f, std::size_t i) const {
    return (row_words(f)[i >> 6] >> (i & 63)) & 1u;
  }

  // kSameDifferent: per-test baseline response ids (num_tests of them).
  const ResponseId* baselines() const {
    return reinterpret_cast<const ResponseId*>(baselines_);
  }
  // kMultiBaseline: the (possibly ragged) baseline set of test t.
  std::pair<const ResponseId*, std::size_t> baseline_set(std::size_t t) const {
    const auto* counts = reinterpret_cast<const std::uint32_t*>(baselines_);
    const auto* ids =
        reinterpret_cast<const ResponseId*>(baselines_ + 4 * num_tests_);
    return {ids + t * rank_, counts[t]};
  }
  // kFull: u32 response-id lanes of fault f's row.
  const ResponseId* full_row(FaultId f) const {
    return reinterpret_cast<const ResponseId*>(
        rows_ + static_cast<std::uint64_t>(f) * row_stride_);
  }
  ResponseId entry(FaultId f, std::size_t t) const { return full_row(f)[t]; }

  // Reconstruction (partitions are recomputed by the from_* factories).
  // Throws std::runtime_error when the store's kind does not match.
  PassFailDictionary to_passfail() const;
  SameDifferentDictionary to_samediff() const;
  MultiBaselineDictionary to_multibaseline() const;
  FullDictionary to_full() const;

 private:
  SignatureStore() = default;

  // Parses + validates the image at base_/size_; throws std::runtime_error
  // naming the defect on anything malformed.
  void parse();
  static SignatureStore adopt(std::vector<std::uint64_t> image);

  std::vector<std::uint64_t> owned_;     // built / stream-loaded storage
  std::shared_ptr<const void> mapping_;  // mmap keep-alive
  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;

  StoreKind kind_ = StoreKind::kPassFail;
  StoreSource source_ = StoreSource::kPassFail;
  std::size_t num_faults_ = 0;
  std::size_t num_tests_ = 0;
  std::size_t num_outputs_ = 0;
  std::size_t rank_ = 1;
  std::uint64_t sig_bits_ = 0;
  std::uint64_t row_stride_ = 0;
  const std::byte* rows_ = nullptr;
  const std::byte* baselines_ = nullptr;
};

}  // namespace sddict
