#include "fleet/proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/failpoint.h"
#include "util/strings.h"

namespace sddict::fleet {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::uint64_t parse_field(const std::vector<std::string>& tokens,
                          const std::string& name) {
  const std::string prefix = name + "=";
  for (const std::string& t : tokens)
    if (starts_with(t, prefix))
      return std::strtoull(t.c_str() + prefix.size(), nullptr, 10);
  return 0;
}

}  // namespace

std::string format_proxy_stats(const ProxyStats& s) {
  std::ostringstream out;
  out << "accepted=" << s.accepted << " responses=" << s.responses
      << " busy_shed=" << s.busy_shed << " failovers=" << s.failovers
      << " backend_disconnects=" << s.backend_disconnects
      << " ejections=" << s.ejections
      << " reinstatements=" << s.reinstatements << " respawns=" << s.respawns
      << " flips=" << s.flips << " rolling_restarts=" << s.rolling_restarts
      << " probes=" << s.probes << " probe_failures=" << s.probe_failures
      << " io_errors=" << s.io_errors << " sessions=" << s.active_sessions
      << " pending=" << s.pending << " proxy_in_flight=" << s.in_flight
      << " backends_healthy=" << s.backends_healthy
      << " backends_total=" << s.backends_total;
  return out.str();
}

// Client-side reply slot; same strict in-order discipline as the
// NetServer. kWaiting with key != 0 is a proxied request; key == 0 is a
// deferred fleet-op reply (flip / rolling restart).
struct FleetProxy::SessionSlot {
  enum class State { kWaiting, kText, kQuit };
  State state = State::kText;
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  std::string text;
};

struct FleetProxy::Session {
  std::uint64_t id = 0;
  int fd = -1;
  net::FrameReader reader;
  std::string outbuf;
  std::deque<SessionSlot> slots;
  std::uint64_t next_slot_seq = 1;
  double last_read_ms = 0;
  double last_write_progress_ms = 0;
  double frame_open_ms = -1;
  bool closing = false;
  bool dead = false;

  explicit Session(std::size_t max_frame_bytes) : reader(max_frame_bytes) {}

  std::size_t unresolved() const {
    std::size_t n = 0;
    for (const SessionSlot& s : slots)
      if (s.state == SessionSlot::State::kWaiting) ++n;
    return n;
  }
  SessionSlot* find_slot(std::uint64_t seq) {
    for (SessionSlot& s : slots)
      if (s.seq == seq) return &s;
    return nullptr;
  }
};

struct FleetProxy::RequestRec {
  std::uint64_t key = 0;
  std::uint64_t session_id = 0;  // 0 = orphaned (client gone); drop reply
  std::uint64_t slot_seq = 0;
  std::string frame;  // the complete datalog text, resent verbatim on failover
  int attempts = 0;   // dispatches so far (capped at max_failovers)
  int backend = -1;   // id it is outstanding on; -1 = queued
};

// One connection per backend, carrying datalog requests and admin ops
// (probes, reloads) interleaved. The line protocol replies strictly in
// request order per connection, so replies are matched FIFO against ops.
struct FleetProxy::BackendConn {
  enum class Health {
    kDown,        // no process/port, or waiting out a reconnect delay
    kConnecting,  // nonblocking connect in flight
    kEntering,    // connected; entry !reload sent, ack pending
    kHealthy,     // in rotation
    kDraining,    // in rotation for replies only (rolling restart)
    kEjected,     // circuit open; waiting out probation_ms
    kProbation,   // reconnected; probing toward reinstatement
  };
  struct Op {
    enum class Kind { kRequest, kProbe, kReload };
    Kind kind = Kind::kRequest;
    std::uint64_t key = 0;  // kRequest only
    double sent_ms = 0;
  };

  FleetBackendAddr addr;
  std::uint64_t seen_generation = 0;       // last generation observed
  std::uint64_t connected_generation = 0;  // generation this fd talks to
  int fd = -1;
  bool connecting = false;
  Health health = Health::kDown;
  bool was_ejected = false;  // reinstatement (not first-entry) path
  std::string inbuf;
  std::string outbuf;
  std::string reply;  // accumulating reply for ops.front()
  std::deque<Op> ops;
  double connect_started_ms = 0;
  double reconnect_after_ms = 0;
  double last_probe_ms = -1e18;
  double ejected_at_ms = 0;
  int consecutive_failures = 0;
  int probation_successes = 0;
  // Last parsed !health reply.
  std::uint64_t health_inflight = 0;
  std::uint64_t version = 0;
  double last_health_ms = -1e18;

  std::size_t request_ops() const {
    std::size_t n = 0;
    for (const Op& op : ops)
      if (op.kind == Op::Kind::kRequest) ++n;
    return n;
  }
  bool probe_outstanding() const {
    for (const Op& op : ops)
      if (op.kind == Op::Kind::kProbe) return true;
    return false;
  }
  bool in_rotation() const {
    return health == Health::kHealthy || health == Health::kDraining;
  }
  const char* health_name() const {
    switch (health) {
      case Health::kDown: return "down";
      case Health::kConnecting: return "connecting";
      case Health::kEntering: return "entering";
      case Health::kHealthy: return "healthy";
      case Health::kDraining: return "draining";
      case Health::kEjected: return "ejected";
      case Health::kProbation: return "probation";
    }
    return "?";
  }
};

// At most one fleet-wide operation runs at a time; its reply is deferred
// until the state machine completes (or op_timeout_ms aborts it).
struct FleetProxy::FleetOp {
  enum class Kind { kFlip, kRolling };
  Kind kind = Kind::kFlip;
  std::uint64_t session_id = 0;
  std::uint64_t slot_seq = 0;
  double started_ms = 0;
  // Flip: 1 = quiescing, 2 = reloads outstanding.
  int phase = 1;
  std::set<int> awaiting;  // backend ids whose reload ack is pending
  // Rolling restart.
  enum class RollStage { kPick, kDrain, kAwaitHealthZero, kAwaitRespawn };
  RollStage roll_stage = RollStage::kPick;
  std::vector<int> order;
  std::size_t idx = 0;
  std::uint64_t gen_at_drain = 0;
  double drain_started_ms = 0;
  int restarted = 0;
};

FleetProxy::FleetProxy(BackendSource& source, const ProxyOptions& options)
    : source_(source), options_(options) {}

FleetProxy::~FleetProxy() {
  for (auto& [id, s] : sessions_)
    if (!s->dead && s->fd >= 0) ::close(s->fd);
  for (auto& b : backends_)
    if (b->fd >= 0) ::close(b->fd);
  if (listener_ >= 0) ::close(listener_);
}

void FleetProxy::start() {
  ::signal(SIGPIPE, SIG_IGN);
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
  if (::inet_pton(AF_INET, options_.bind_host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("bad bind host '" + options_.bind_host + "'");
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw_errno("bind tcp port " + std::to_string(options_.tcp_port));
  if (::listen(listener_, options_.backlog) != 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  bound_tcp_port_ = ntohs(addr.sin_port);
  fdio::set_nonblocking(listener_);
  fdio::set_cloexec(listener_);
}

void FleetProxy::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake_.notify();
}

ProxyStats FleetProxy::stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return stats_;
}

ProxyStats FleetProxy::snapshot_live() const {
  ProxyStats s = live_;
  s.active_sessions = sessions_.size();
  s.pending = queue_.size();
  std::uint64_t inflight = 0, healthy = 0;
  for (const auto& b : backends_) {
    inflight += b->request_ops();
    if (b->health == BackendConn::Health::kHealthy) ++healthy;
  }
  s.in_flight = inflight;
  s.backends_healthy = healthy;
  s.backends_total = backends_.size();
  s.respawns = view_.respawns;
  return s;
}

double FleetProxy::now_ms() const {
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch)
      .count();
}

std::uint32_t FleetProxy::retry_hint() const {
  const double pressure =
      options_.max_pending > 0
          ? static_cast<double>(queue_.size()) /
                static_cast<double>(options_.max_pending)
          : 1.0;
  const double hint = options_.busy_retry_ms * (1.0 + 3.0 * pressure);
  return static_cast<std::uint32_t>(
      std::min(hint, options_.busy_retry_ms * 16.0));
}

// ------------------------------------------------------- client side --

void FleetProxy::accept_ready() {
  for (;;) {
    fdio::IoResult r;
    const int fd = fdio::accept_retry(listener_, &r);
    if (fd < 0) {
      if (r.failed) ++live_.io_errors;
      return;
    }
    if (sessions_.size() >= options_.max_sessions) {
      std::ostringstream os;
      net::write_busy(os, retry_hint());
      const std::string text = os.str();
      (void)fdio::write_some(fd, text.data(), text.size());
      ::close(fd);
      ++live_.busy_shed;
      continue;
    }
    fdio::set_nonblocking(fd);
    fdio::set_cloexec(fd);
    auto s = std::make_unique<Session>(options_.max_frame_bytes);
    s->id = next_session_id_++;
    s->fd = fd;
    s->last_read_ms = s->last_write_progress_ms = now_ms();
    ++live_.accepted;
    sessions_.emplace(s->id, std::move(s));
  }
}

void FleetProxy::read_ready(Session& s) {
  char buf[4096];
  for (int round = 0; round < 8 && !s.closing && !s.dead; ++round) {
    const fdio::IoResult r = fdio::read_some(s.fd, buf, sizeof buf);
    if (r.would_block) break;
    if (r.failed) {
      ++live_.io_errors;
      force_close(s);
      return;
    }
    if (r.n == 0) {
      s.closing = true;
      break;
    }
    s.last_read_ms = now_ms();
    s.reader.feed(buf, static_cast<std::size_t>(r.n));
    net::Frame frame;
    while (!s.closing && !s.dead && s.reader.next(&frame))
      handle_frame(s, std::move(frame));
  }
  if (!s.dead) {
    if (s.reader.mid_frame()) {
      if (s.frame_open_ms < 0) s.frame_open_ms = now_ms();
    } else {
      s.frame_open_ms = -1;
    }
  }
}

void FleetProxy::handle_frame(Session& s, net::Frame frame) {
  SessionSlot slot;
  slot.seq = s.next_slot_seq++;
  switch (frame.type) {
    case net::Frame::Type::kOversize: {
      std::ostringstream os;
      net::write_error(os, "frame exceeds " +
                               std::to_string(options_.max_frame_bytes) +
                               " bytes");
      slot.state = SessionSlot::State::kText;
      slot.text = os.str();
      s.slots.push_back(std::move(slot));
      s.closing = true;
      return;
    }
    case net::Frame::Type::kCommand:
      s.slots.push_back(std::move(slot));
      handle_command(s, s.slots.back(), std::move(frame.tokens));
      return;
    case net::Frame::Type::kDatalog:
      break;
  }
  if (s.unresolved() >= options_.session_inflight ||
      queue_.size() >= options_.max_pending) {
    ++live_.busy_shed;
    std::ostringstream os;
    net::write_busy(os, retry_hint());
    slot.state = SessionSlot::State::kText;
    slot.text = os.str();
    s.slots.push_back(std::move(slot));
    return;
  }
  auto rec = std::make_unique<RequestRec>();
  rec->key = next_key_++;
  rec->session_id = s.id;
  rec->slot_seq = slot.seq;
  rec->frame = std::move(frame.text);
  slot.state = SessionSlot::State::kWaiting;
  slot.key = rec->key;
  queue_.push_back(rec->key);
  requests_.emplace(rec->key, std::move(rec));
  s.slots.push_back(std::move(slot));
}

void FleetProxy::handle_command(Session& s, SessionSlot& slot,
                                std::vector<std::string> tokens) {
  std::ostringstream os;
  if (tokens.size() == 1 && tokens[0] == "quit") {
    slot.state = SessionSlot::State::kQuit;
    return;
  }
  if (tokens.size() == 1 && tokens[0] == "stats") {
    os << "stats " << format_proxy_stats(snapshot_live()) << "\n";
  } else if (tokens.size() == 1 && tokens[0] == "!health") {
    const ProxyStats ps = snapshot_live();
    os << "health state=" << (draining_ ? "draining" : "ok")
       << " healthy=" << ps.backends_healthy
       << " total=" << ps.backends_total << " pending=" << ps.pending
       << " in_flight=" << ps.in_flight << "\n";
  } else if (tokens.size() == 1 && tokens[0] == "!fleet") {
    render_fleet(os);
  } else if (tokens.size() == 1 &&
             (tokens[0] == "!reload" || tokens[0] == "!rolling")) {
    if (op_ != nullptr) {
      net::write_error(os, "fleet operation already in progress");
    } else {
      op_ = std::make_unique<FleetOp>();
      op_->kind = tokens[0] == "!reload" ? FleetOp::Kind::kFlip
                                         : FleetOp::Kind::kRolling;
      op_->session_id = s.id;
      op_->slot_seq = slot.seq;
      op_->started_ms = now_ms();
      if (op_->kind == FleetOp::Kind::kFlip) {
        // Phase 1: quiesce. New work queues behind the flip; the flip
        // completes when nothing is running anywhere.
        dispatch_paused_ = true;
      } else {
        for (const auto& b : backends_)
          if (b->health == BackendConn::Health::kHealthy)
            op_->order.push_back(b->addr.id);
      }
      slot.state = SessionSlot::State::kWaiting;  // deferred reply, key == 0
      return;
    }
  } else {
    net::write_error(os, "unknown verb " + (tokens.empty() ? "" : tokens[0]) +
                             " (have stats !health !fleet !reload !rolling"
                             " quit)");
  }
  slot.state = SessionSlot::State::kText;
  slot.text = os.str();
}

void FleetProxy::render_fleet(std::ostream& os) const {
  for (const auto& b : backends_) {
    os << "backend id=" << b->addr.id << " pid=" << b->addr.pid
       << " gen=" << b->addr.generation << " addr=" << b->addr.host << ":"
       << b->addr.port << " state=" << b->health_name()
       << " version=" << b->version << " inflight=" << b->request_ops()
       << " fails=" << b->consecutive_failures << "\n";
  }
  std::uint64_t healthy = 0;
  for (const auto& b : backends_)
    if (b->health == BackendConn::Health::kHealthy) ++healthy;
  os << "fleet healthy=" << healthy << " total=" << backends_.size()
     << " respawns=" << view_.respawns << " failovers=" << live_.failovers
     << " ejections=" << live_.ejections << " flips=" << live_.flips
     << "\n"
     << "done\n";
}

void FleetProxy::resolve_fronts(Session& s) {
  while (!s.slots.empty() && !s.dead) {
    SessionSlot& front = s.slots.front();
    switch (front.state) {
      case SessionSlot::State::kWaiting:
        return;
      case SessionSlot::State::kText:
        s.outbuf += front.text;
        ++live_.responses;
        s.slots.pop_front();
        break;
      case SessionSlot::State::kQuit:
        s.closing = true;
        s.slots.pop_front();
        break;
    }
  }
}

void FleetProxy::flush_writes(Session& s) {
  while (!s.outbuf.empty() && !s.dead) {
    const fdio::IoResult r =
        fdio::write_some(s.fd, s.outbuf.data(), s.outbuf.size());
    if (r.would_block) return;
    if (r.failed) {
      ++live_.io_errors;
      force_close(s);
      return;
    }
    if (r.n > 0) {
      s.outbuf.erase(0, static_cast<std::size_t>(r.n));
      s.last_write_progress_ms = now_ms();
    }
  }
}

void FleetProxy::enforce_timeouts(Session& s, double now) {
  if (s.dead) return;
  if (!s.outbuf.empty() &&
      now - s.last_write_progress_ms > options_.write_timeout_ms) {
    force_close(s);
    return;
  }
  if (s.frame_open_ms >= 0 &&
      now - s.frame_open_ms > options_.frame_timeout_ms) {
    force_close(s);
    return;
  }
  if (!s.closing && s.outbuf.empty() && s.slots.empty() &&
      !s.reader.mid_frame() && now - s.last_read_ms > options_.idle_timeout_ms)
    force_close(s);
}

// Teardown. Queued requests are erased (the dispatcher skips missing
// keys); requests outstanding on a backend become orphans — the backend
// will still answer them (they hold its capacity), and the reply is
// dropped on arrival.
void FleetProxy::force_close(Session& s) {
  if (s.dead) return;
  for (SessionSlot& slot : s.slots) {
    if (slot.state != SessionSlot::State::kWaiting || slot.key == 0) continue;
    auto it = requests_.find(slot.key);
    if (it == requests_.end()) continue;
    if (it->second->backend < 0)
      requests_.erase(it);
    else
      it->second->session_id = 0;  // orphan
  }
  s.slots.clear();
  s.outbuf.clear();
  ::close(s.fd);
  s.fd = -1;
  s.dead = true;
}

// ------------------------------------------------------ backend side --

void FleetProxy::sync_backends(double now) {
  while (backends_.size() < view_.backends.size()) {
    auto b = std::make_unique<BackendConn>();
    b->addr = view_.backends[backends_.size()];
    backends_.push_back(std::move(b));
  }
  for (std::size_t i = 0; i < view_.backends.size(); ++i) {
    BackendConn& b = *backends_[i];
    b.addr = view_.backends[i];
    if (b.addr.generation != b.seen_generation) {
      // A respawn: any existing connection talks to a corpse, and the
      // fresh process deserves a fresh circuit breaker.
      b.seen_generation = b.addr.generation;
      if (b.fd >= 0 || b.connecting) backend_conn_lost(b, now, true);
      b.consecutive_failures = 0;
      b.was_ejected = false;
      b.health = BackendConn::Health::kDown;
      b.reconnect_after_ms = now;
    }
    if ((b.fd >= 0 || b.connecting) && b.addr.port < 0) {
      // The supervisor says the process is gone; don't wait for EOF.
      backend_conn_lost(b, now, true);
    }
    if (b.fd < 0 && !b.connecting && b.addr.port >= 0 &&
        now >= b.reconnect_after_ms) {
      if (b.health == BackendConn::Health::kEjected) {
        if (now - b.ejected_at_ms >= options_.probation_ms)
          connect_backend(b, now);
      } else {
        connect_backend(b, now);
      }
    }
    if (b.connecting &&
        now - b.connect_started_ms > options_.probe_timeout_ms) {
      backend_conn_lost(b, now, false);  // connect() never completed
    }
  }
}

void FleetProxy::connect_backend(BackendConn& b, double now) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    ++live_.io_errors;
    b.reconnect_after_ms = now + options_.probe_interval_ms;
    return;
  }
  fdio::set_nonblocking(fd);
  fdio::set_cloexec(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(b.addr.port));
  if (::inet_pton(AF_INET, b.addr.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    b.reconnect_after_ms = now + options_.probe_interval_ms;
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    b.reconnect_after_ms = now + options_.probe_interval_ms;
    return;
  }
  b.fd = fd;
  b.connected_generation = b.addr.generation;
  b.connect_started_ms = now;
  b.inbuf.clear();
  b.outbuf.clear();
  b.reply.clear();
  if (rc == 0) {
    b.connecting = false;
    on_backend_connected(b, now);
  } else {
    b.connecting = true;
    b.health = BackendConn::Health::kConnecting;
  }
}

void FleetProxy::on_backend_connected(BackendConn& b, double now) {
  b.connecting = false;
  if (b.was_ejected) {
    // Reinstatement path: earn reinstate_after_successes probe successes
    // before the entry reload readmits it.
    b.health = BackendConn::Health::kProbation;
    b.probation_successes = 0;
    b.last_probe_ms = -1e18;
  } else {
    // Uniform entry rule: every backend joining rotation reloads first,
    // so it provably serves the newest published version no matter when
    // its process last read the manifest.
    b.health = BackendConn::Health::kEntering;
    b.outbuf += "!reload\n";
    b.ops.push_back({BackendConn::Op::Kind::kReload, 0, now});
    backend_flush(b);
  }
}

// Closes the connection (if open) and fails over every request that was
// outstanding on it: keys go back to the FRONT of the queue in their
// original order, so failover never reorders a session's requests.
void FleetProxy::close_backend(BackendConn& b, const char* why,
                               bool count_disconnect) {
  if (b.fd < 0 && !b.connecting) return;
  (void)why;
  if (count_disconnect) ++live_.backend_disconnects;
  ::close(b.fd);
  b.fd = -1;
  b.connecting = false;
  b.inbuf.clear();
  b.outbuf.clear();
  b.reply.clear();
  std::vector<std::uint64_t> keys;  // oldest first
  for (const BackendConn::Op& op : b.ops)
    if (op.kind == BackendConn::Op::Kind::kRequest) keys.push_back(op.key);
  // A pending flip must not wait forever for an ack this backend can no
  // longer send; it re-enters via the entry reload instead.
  if (op_ != nullptr && op_->kind == FleetOp::Kind::kFlip)
    op_->awaiting.erase(b.addr.id);
  b.ops.clear();
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) requeue_or_fail(*it);
}

void FleetProxy::backend_conn_lost(BackendConn& b, double now,
                                   bool count_disconnect) {
  close_backend(b, "lost", count_disconnect);
  ++b.consecutive_failures;
  b.probation_successes = 0;
  if (b.was_ejected || b.health == BackendConn::Health::kProbation ||
      b.health == BackendConn::Health::kEjected) {
    b.health = BackendConn::Health::kEjected;
    b.ejected_at_ms = now;
  } else if (b.in_rotation() &&
             b.consecutive_failures >= options_.eject_after_failures) {
    ++live_.ejections;
    b.was_ejected = true;
    b.health = BackendConn::Health::kEjected;
    b.ejected_at_ms = now;
  } else {
    b.health = BackendConn::Health::kDown;
    b.reconnect_after_ms = now + options_.probe_interval_ms;
  }
}

void FleetProxy::requeue_or_fail(std::uint64_t key) {
  auto it = requests_.find(key);
  if (it == requests_.end()) return;
  RequestRec& rec = *it->second;
  rec.backend = -1;
  if (rec.session_id == 0) {
    requests_.erase(it);  // orphan: nobody is owed the reply anymore
    return;
  }
  if (rec.attempts >= options_.max_failovers) {
    std::ostringstream os;
    net::write_error(os, "backend unavailable (gave up after " +
                             std::to_string(rec.attempts) + " attempts)");
    finish_request(key, os.str());
    return;
  }
  ++live_.failovers;
  queue_.push_front(key);
}

void FleetProxy::finish_request(std::uint64_t key, std::string reply_text) {
  auto it = requests_.find(key);
  if (it == requests_.end()) return;
  const std::uint64_t session_id = it->second->session_id;
  const std::uint64_t slot_seq = it->second->slot_seq;
  requests_.erase(it);
  if (session_id == 0) return;
  auto sit = sessions_.find(session_id);
  if (sit == sessions_.end() || sit->second->dead) return;
  SessionSlot* slot = sit->second->find_slot(slot_seq);
  if (slot == nullptr || slot->state != SessionSlot::State::kWaiting) return;
  slot->state = SessionSlot::State::kText;
  slot->text = std::move(reply_text);
}

void FleetProxy::backend_flush(BackendConn& b) {
  while (!b.outbuf.empty() && b.fd >= 0 && !b.connecting) {
    if (failpoint::triggered("fleet.backend.reset")) {
      // Chaos hook: sever the data path mid-conversation; everything
      // outstanding fails over exactly as it would on a real death.
      backend_conn_lost(b, now_ms(), true);
      return;
    }
    const fdio::IoResult r =
        fdio::write_some(b.fd, b.outbuf.data(), b.outbuf.size());
    if (r.would_block) return;
    if (r.failed) {
      ++live_.io_errors;
      backend_conn_lost(b, now_ms(), true);
      return;
    }
    if (r.n > 0) b.outbuf.erase(0, static_cast<std::size_t>(r.n));
  }
}

void FleetProxy::backend_read_ready(BackendConn& b, double now) {
  char buf[4096];
  for (int round = 0; round < 8 && b.fd >= 0; ++round) {
    const fdio::IoResult r = fdio::read_some(b.fd, buf, sizeof buf);
    if (r.would_block) break;
    if (r.failed || r.n == 0) {
      if (r.failed) ++live_.io_errors;
      backend_conn_lost(b, now, true);
      return;
    }
    b.inbuf.append(buf, static_cast<std::size_t>(r.n));
    std::size_t nl;
    while (b.fd >= 0 && (nl = b.inbuf.find('\n')) != std::string::npos) {
      std::string line = b.inbuf.substr(0, nl);
      b.inbuf.erase(0, nl + 1);
      consume_backend_line(b, std::move(line), now);
    }
  }
}

void FleetProxy::consume_backend_line(BackendConn& b, std::string line,
                                      double now) {
  if (b.ops.empty()) {
    // A reply nobody asked for: protocol violation; drop the connection.
    ++live_.io_errors;
    backend_conn_lost(b, now, true);
    return;
  }
  BackendConn::Op& front = b.ops.front();
  if (front.kind == BackendConn::Op::Kind::kProbe && b.reply.empty() &&
      starts_with(line, "health ")) {
    b.ops.pop_front();
    probe_success(b, split_ws(line), now);
    return;
  }
  const bool done = line == "done";
  b.reply += line;
  b.reply += '\n';
  if (!done) return;
  std::string reply = std::move(b.reply);
  b.reply.clear();
  const BackendConn::Op op = front;
  b.ops.pop_front();
  switch (op.kind) {
    case BackendConn::Op::Kind::kRequest:
      finish_request(op.key, std::move(reply));
      break;
    case BackendConn::Op::Kind::kProbe:
      // A probe answered with error...done (e.g. no circuit selected yet).
      probe_failure(b, now);
      break;
    case BackendConn::Op::Kind::kReload: {
      const bool ok = starts_with(reply, "reloaded");
      if (b.health == BackendConn::Health::kEntering) {
        if (ok) {
          b.health = BackendConn::Health::kHealthy;
          if (b.was_ejected) {
            ++live_.reinstatements;
            b.was_ejected = false;
          }
        } else {
          // Can't prove it serves the current version; keep it out.
          backend_conn_lost(b, now, false);
        }
      } else if (op_ != nullptr && op_->kind == FleetOp::Kind::kFlip) {
        op_->awaiting.erase(b.addr.id);
        if (!ok) {
          // This backend missed the flip; eject it so the entry reload
          // re-proves its version before it serves again.
          ++live_.ejections;
          b.was_ejected = true;
          backend_conn_lost(b, now, false);
        }
      }
      break;
    }
  }
}

void FleetProxy::probe_success(BackendConn& b,
                               const std::vector<std::string>& tokens,
                               double now) {
  b.consecutive_failures = 0;
  b.health_inflight = parse_field(tokens, "in_flight");
  b.version = parse_field(tokens, "version");
  b.last_health_ms = now;
  if (b.health == BackendConn::Health::kProbation) {
    if (++b.probation_successes >= options_.reinstate_after_successes) {
      b.health = BackendConn::Health::kEntering;
      b.outbuf += "!reload\n";
      b.ops.push_back({BackendConn::Op::Kind::kReload, 0, now});
      backend_flush(b);
    }
  }
}

void FleetProxy::probe_failure(BackendConn& b, double now) {
  ++live_.probe_failures;
  b.probation_successes = 0;
  ++b.consecutive_failures;
  if (b.in_rotation() &&
      b.consecutive_failures >= options_.eject_after_failures) {
    ++live_.ejections;
    b.was_ejected = true;
    close_backend(b, "ejected", false);
    b.health = BackendConn::Health::kEjected;
    b.ejected_at_ms = now;
  } else if (b.health == BackendConn::Health::kProbation) {
    close_backend(b, "probation failure", false);
    b.health = BackendConn::Health::kEjected;
    b.ejected_at_ms = now;
  }
}

void FleetProxy::probe_backends(double now) {
  for (const auto& bp : backends_) {
    BackendConn& b = *bp;
    if (b.fd < 0 || b.connecting) continue;
    // A wedged backend (alive but silent) must not hold requests hostage:
    // when the OLDEST outstanding op has had no complete reply for
    // probe_timeout_ms, the connection is declared dead and everything
    // on it fails over. Diagnosis replies normally land in microseconds;
    // the deadline only fires for genuine wedges.
    if (!b.ops.empty() &&
        now - b.ops.front().sent_ms > options_.probe_timeout_ms) {
      ++live_.probe_failures;
      backend_conn_lost(b, now, true);
      continue;
    }
    const bool probeable = b.in_rotation() ||
                           b.health == BackendConn::Health::kProbation;
    if (probeable && !b.probe_outstanding() &&
        now - b.last_probe_ms >= options_.probe_interval_ms) {
      b.last_probe_ms = now;
      ++live_.probes;
      b.outbuf += "!health\n";
      b.ops.push_back({BackendConn::Op::Kind::kProbe, 0, now});
      backend_flush(b);
    }
  }
}

void FleetProxy::dispatch(double now) {
  if (dispatch_paused_) return;
  while (!queue_.empty()) {
    // Round-robin over dispatchable backends, resuming after the one the
    // previous request landed on.
    BackendConn* target = nullptr;
    const std::size_t n = backends_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      BackendConn& cand = *backends_[(rr_cursor_ + 1 + probe) % n];
      if (cand.health != BackendConn::Health::kHealthy || cand.fd < 0 ||
          cand.connecting)
        continue;
      if (cand.request_ops() >= options_.backend_inflight) continue;
      target = &cand;
      rr_cursor_ = (rr_cursor_ + 1 + probe) % n;
      break;
    }
    if (target == nullptr) return;  // nobody can take work right now
    const std::uint64_t key = queue_.front();
    queue_.pop_front();
    auto it = requests_.find(key);
    if (it == requests_.end()) continue;  // its session died while queued
    RequestRec& rec = *it->second;
    ++rec.attempts;
    rec.backend = target->addr.id;
    target->outbuf += rec.frame;
    target->ops.push_back({BackendConn::Op::Kind::kRequest, key, now});
    backend_flush(*target);
  }
}

// ----------------------------------------------------- fleet ops ------

void FleetProxy::finish_fleet_op(const std::string& text, bool ok) {
  (void)ok;
  if (op_ == nullptr) return;
  const std::uint64_t session_id = op_->session_id;
  const std::uint64_t slot_seq = op_->slot_seq;
  op_.reset();
  dispatch_paused_ = false;
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second->dead) return;
  SessionSlot* slot = it->second->find_slot(slot_seq);
  if (slot == nullptr || slot->state != SessionSlot::State::kWaiting) return;
  slot->state = SessionSlot::State::kText;
  slot->text = text;
}

void FleetProxy::step_fleet_op(double now) {
  if (op_ == nullptr) return;
  if (now - op_->started_ms > options_.op_timeout_ms) {
    if (op_->kind == FleetOp::Kind::kRolling) {
      // Put the half-drained backend back to work.
      for (const auto& b : backends_)
        if (b->health == BackendConn::Health::kDraining)
          b->health = BackendConn::Health::kHealthy;
    }
    std::ostringstream os;
    net::write_error(os, "fleet operation timed out");
    finish_fleet_op(os.str(), false);
    return;
  }
  if (op_->kind == FleetOp::Kind::kFlip) {
    if (op_->phase == 1) {
      std::size_t inflight = 0;
      for (const auto& b : backends_) inflight += b->request_ops();
      if (inflight > 0) return;  // still quiescing
      op_->phase = 2;
      for (const auto& b : backends_) {
        if (!b->in_rotation() || b->fd < 0) continue;
        op_->awaiting.insert(b->addr.id);
        b->outbuf += "!reload\n";
        b->ops.push_back({BackendConn::Op::Kind::kReload, 0, now});
        backend_flush(*b);
      }
    }
    if (op_->phase == 2 && op_->awaiting.empty()) {
      ++live_.flips;
      std::size_t in_rotation = 0;
      for (const auto& b : backends_)
        if (b->in_rotation()) ++in_rotation;
      finish_fleet_op(
          "reloaded backends=" + std::to_string(in_rotation) + "\ndone\n",
          true);
    }
    return;
  }
  // Rolling restart: one backend at a time, in the order captured when
  // the op started.
  for (;;) {
    if (op_->idx >= op_->order.size()) {
      ++live_.rolling_restarts;
      finish_fleet_op(
          "rolling restarted=" + std::to_string(op_->restarted) + "\ndone\n",
          true);
      return;
    }
    const int id = op_->order[op_->idx];
    BackendConn* b = nullptr;
    for (const auto& bp : backends_)
      if (bp->addr.id == id) b = bp.get();
    if (b == nullptr) {
      ++op_->idx;
      continue;
    }
    switch (op_->roll_stage) {
      case FleetOp::RollStage::kPick:
        if (b->health != BackendConn::Health::kHealthy) {
          ++op_->idx;  // died or was ejected since the order was captured
          continue;
        }
        b->health = BackendConn::Health::kDraining;
        op_->gen_at_drain = b->addr.generation;
        op_->drain_started_ms = now;
        op_->roll_stage = FleetOp::RollStage::kDrain;
        return;
      case FleetOp::RollStage::kDrain:
        if (b->health != BackendConn::Health::kDraining) {
          // It fell out of rotation on its own (crash, ejection); the
          // respawn/reinstatement machinery takes it from here.
          op_->roll_stage = FleetOp::RollStage::kAwaitRespawn;
          continue;
        }
        if (b->request_ops() > 0) return;  // proxy-side work still owed
        op_->roll_stage = FleetOp::RollStage::kAwaitHealthZero;
        b->last_probe_ms = -1e18;  // force an immediate fresh probe
        continue;
      case FleetOp::RollStage::kAwaitHealthZero:
        if (b->health != BackendConn::Health::kDraining) {
          op_->roll_stage = FleetOp::RollStage::kAwaitRespawn;
          continue;
        }
        // The backend itself must confirm zero in-flight on a probe taken
        // after the drain began — proxy-side zero plus a stale health
        // line is not proof.
        if (b->last_health_ms < op_->drain_started_ms ||
            b->health_inflight != 0)
          return;
        source_.restart(id);
        op_->roll_stage = FleetOp::RollStage::kAwaitRespawn;
        return;
      case FleetOp::RollStage::kAwaitRespawn:
        if (b->addr.generation > op_->gen_at_drain &&
            b->health == BackendConn::Health::kHealthy) {
          ++op_->restarted;
          ++op_->idx;
          op_->roll_stage = FleetOp::RollStage::kPick;
          continue;
        }
        return;
    }
  }
}

// ----------------------------------------------------------- run ------

void FleetProxy::run() {
  draining_ = false;
  double drain_start = 0;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_session;  // session id, 0 = none
  std::vector<int> fd_backend;            // index into backends_, -1 = none
  for (;;) {
    const double tick_now = now_ms();
    source_.tick(tick_now, &view_);
    sync_backends(tick_now);
    probe_backends(tick_now);

    fds.clear();
    fd_session.clear();
    fd_backend.clear();
    fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
    fd_session.push_back(0);
    fd_backend.push_back(-1);
    std::size_t listener_idx = 0;
    if (!draining_ && listener_ >= 0) {
      listener_idx = fds.size();
      fds.push_back(pollfd{listener_, POLLIN, 0});
      fd_session.push_back(0);
      fd_backend.push_back(-1);
    }
    for (auto& [id, sp] : sessions_) {
      Session& s = *sp;
      if (s.dead) continue;
      short events = 0;
      if (!s.closing && !draining_) events |= POLLIN;
      if (!s.outbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{s.fd, events, 0});
      fd_session.push_back(id);
      fd_backend.push_back(-1);
    }
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      BackendConn& b = *backends_[i];
      if (b.fd < 0) continue;
      short events = POLLIN;
      if (b.connecting || !b.outbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{b.fd, events, 0});
      fd_session.push_back(0);
      fd_backend.push_back(static_cast<int>(i));
    }

    // Probe cadence, reconnect backoff and supervisor reaping all need
    // periodic ticks even when no fd fires.
    const int nready = ::poll(fds.data(), fds.size(), 20);
    if (nready < 0 && errno != EINTR) ++live_.io_errors;
    wake_.drain();

    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_start = now_ms();
      if (listener_ >= 0) ::close(listener_);
      listener_ = -1;
    }

    const double now = now_ms();
    if (!draining_ && nready > 0 && listener_idx != 0 &&
        (fds[listener_idx].revents & POLLIN))
      accept_ready();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fd_backend[i] >= 0) {
        BackendConn& b = *backends_[static_cast<std::size_t>(fd_backend[i])];
        if (b.fd != fds[i].fd) continue;  // replaced mid-loop
        if (fds[i].revents & (POLLERR | POLLNVAL)) {
          ++live_.io_errors;
          backend_conn_lost(b, now, true);
          continue;
        }
        if (b.connecting && (fds[i].revents & (POLLOUT | POLLHUP))) {
          int err = 0;
          socklen_t len = sizeof err;
          ::getsockopt(b.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            backend_conn_lost(b, now, false);
            continue;
          }
          on_backend_connected(b, now);
        }
        if (b.fd >= 0 && (fds[i].revents & (POLLIN | POLLHUP)))
          backend_read_ready(b, now);
        if (b.fd >= 0 && (fds[i].revents & POLLOUT)) backend_flush(b);
        continue;
      }
      if (fd_session[i] == 0) continue;
      auto it = sessions_.find(fd_session[i]);
      if (it == sessions_.end() || it->second->dead) continue;
      Session& s = *it->second;
      if (fds[i].revents & (POLLERR | POLLNVAL)) {
        ++live_.io_errors;
        force_close(s);
        continue;
      }
      if (!draining_ && (fds[i].revents & (POLLIN | POLLHUP))) read_ready(s);
    }

    dispatch(now);
    step_fleet_op(now);

    for (auto& [id, sp] : sessions_) {
      if (sp->dead) continue;
      resolve_fronts(*sp);
      flush_writes(*sp);
      enforce_timeouts(*sp, now);
      if (!sp->dead && sp->closing && sp->slots.empty() && sp->outbuf.empty()) {
        ::close(sp->fd);
        sp->fd = -1;
        sp->dead = true;
      }
    }
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->dead)
        it = sessions_.erase(it);
      else
        ++it;
    }

    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      stats_ = snapshot_live();
    }

    if (draining_) {
      bool work_left = !queue_.empty() || !requests_.empty();
      for (auto& [id, sp] : sessions_)
        if (!sp->dead && (!sp->slots.empty() || !sp->outbuf.empty()))
          work_left = true;
      if (!work_left || now - drain_start > options_.drain_timeout_ms) {
        for (auto& [id, sp] : sessions_)
          if (!sp->dead) {
            ::close(sp->fd);
            sp->fd = -1;
            sp->dead = true;
          }
        sessions_.clear();
        for (auto& b : backends_)
          if (b->fd >= 0) {
            ::close(b->fd);
            b->fd = -1;
            b->connecting = false;
            b->ops.clear();
          }
        std::lock_guard<std::mutex> lk(stats_mutex_);
        stats_ = snapshot_live();
        stats_.active_sessions = 0;
        return;
      }
    }
  }
}

}  // namespace sddict::fleet
