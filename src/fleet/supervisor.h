// Fleet supervisor: forks and babysits N sddict_serve backend processes
// over one shared repository directory, and tells the proxy where they
// live.
//
// Address discovery is race-free: each backend is spawned with
// `--tcp=0 --port-file=<state_dir>/backend_<i>.port`, and the server
// writes its kernel-assigned address to the port file atomically (temp +
// rename) only after bind+listen succeed — so when the supervisor sees
// the file, the listener is already accepting. No stderr scraping, no
// torn reads, no connect-before-listen window.
//
// Crash recovery: child exits (including kill -9) are detected with
// non-blocking waitpid and answered by a respawn under exponential
// backoff (respawn_min_ms doubling up to respawn_max_ms), reset to the
// floor when the exit was an intentional restart (rolling restart path)
// or the previous incarnation held its port long enough to count as
// stable. Every respawn bumps the backend's generation so the proxy
// knows its old connection (if any) is to a corpse.
//
// Threading: the supervisor is driven entirely by tick() calls from the
// proxy's event-loop thread — no threads, no locks of its own.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace sddict::fleet {

// One backend as the proxy should see it. port == -1 means down or not
// yet bound; generation bumps on every (re)spawn, so a proxy connection
// tagged with an older generation is known-stale.
struct FleetBackendAddr {
  int id = 0;
  std::string host;
  int port = -1;
  std::uint64_t generation = 0;
  pid_t pid = -1;
};

struct FleetView {
  std::vector<FleetBackendAddr> backends;
  std::uint64_t respawns = 0;  // spawns that replaced a dead process
};

// How the proxy learns where its backends live. tick() is called once
// per event-loop iteration (reap, respawn, read port files, fill the
// view); restart(id) requests a graceful restart of one backend — the
// rolling-restart primitive. Implemented by Supervisor for real process
// fleets and by in-process fakes in tests.
struct BackendSource {
  virtual ~BackendSource() = default;
  virtual void tick(double now_ms, FleetView* view) = 0;
  virtual bool restart(int id) = 0;
  virtual void shutdown() {}
};

struct SupervisorOptions {
  std::string serve_binary;                // path to the sddict_serve binary
  std::vector<std::string> backend_args;   // common args (--repo=..., ...)
  std::string state_dir;                   // port files live here
  int backends = 3;
  double respawn_min_ms = 200;             // backoff floor (and reset value)
  double respawn_max_ms = 5000;            // backoff ceiling
  double stable_ms = 10000;                // up this long resets the backoff
  double port_wait_ms = 15000;             // spawn -> port-file deadline
  // SDDICT_FAILPOINTS for the children. Always set explicitly (or
  // explicitly unset when empty): backends must never silently inherit
  // the supervisor's own failpoint spec.
  std::string backend_failpoints;
};

class Supervisor : public BackendSource {
 public:
  explicit Supervisor(const SupervisorOptions& options);
  ~Supervisor() override;  // calls shutdown()

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  void tick(double now_ms, FleetView* view) override;
  // SIGTERM the backend; the exit is reaped by tick() and respawned at
  // the backoff floor. False when it is not running.
  bool restart(int id) override;
  // SIGTERM everything, wait up to `grace_ms`, SIGKILL stragglers, reap.
  void shutdown() override;

  std::uint64_t respawns() const { return respawns_; }

 private:
  enum class State { kBackoff, kWaitPort, kUp };

  struct Backend {
    int id = 0;
    State state = State::kBackoff;
    pid_t pid = -1;
    std::uint64_t generation = 0;  // 0 = never spawned
    std::string port_file;
    std::string host;
    int port = -1;
    double backoff_ms = 0;
    double next_spawn_ms = 0;   // kBackoff: earliest spawn time
    double spawn_time_ms = 0;   // kWaitPort: deadline anchor
    double up_since_ms = 0;     // kUp: for the stable-reset rule
    bool intentional_exit = false;  // restart() was asked for this pid
  };

  void spawn_backend(Backend& b, double now_ms);
  void handle_exit(Backend& b, double now_ms);

  SupervisorOptions options_;
  std::vector<Backend> backends_;
  std::uint64_t respawns_ = 0;
  double shutdown_grace_ms_ = 5000;
  bool shut_down_ = false;
};

}  // namespace sddict::fleet
