// Round-robin fleet proxy: one poll() event loop (the src/net pattern)
// multiplexing client sessions on the front and one connection per
// backend on the back, with health probing, circuit-breaker ejection,
// transparent failover, and fleet-wide epoch-consistent hot swap.
//
// Request path. A client datalog frame becomes a RequestRec with an
// idempotent request key; keys queue FIFO and are dealt round-robin to
// healthy backends (bounded per-backend in-flight). Replies are matched
// FIFO against the keys outstanding on that backend — the line protocol
// answers strictly in request order per connection — and are buffered
// complete (through `done`) before being forwarded verbatim, so a client
// never sees a half-reply from a backend that died mid-write.
//
// Failover. When a backend connection drops (process death, kill -9, or
// the fleet.backend.reset failpoint), every key outstanding on it goes
// back to the FRONT of the queue in order and is re-dealt to a healthy
// backend. A request is outstanding on at most one backend at a time, so
// the client sees exactly one reply — byte-identical to what single-store
// stdio mode would produce, because diagnosis is a pure function of the
// store version and the fleet serves one version at a time (below).
// Requests that exceed max_failovers answer `error backend unavailable`.
//
// Health. Each backend is probed with `!health` every probe_interval_ms
// over its connection. eject_after_failures consecutive probe failures
// (timeout, parse error, connection error) open the circuit: the backend
// leaves rotation, its connection is closed (failing over its work), and
// after probation_ms it is re-probed; reinstate_after_successes
// consecutive successes close the circuit again. Any backend ENTERING
// rotation — first connect, respawn, reinstatement — first gets a
// `!reload` and must ack it, so it provably serves the newest published
// version regardless of when it last read the manifest.
//
// Epoch flip. A client `!reload` triggers the fleet-wide two-phase swap:
// phase 1 quiesces dispatch and waits for zero in-flight across the
// fleet (new work queues up behind the flip); phase 2 sends `!reload` to
// every in-rotation backend and waits for every ack, then dispatch
// resumes. Between the last pre-flip reply and the first post-flip
// dispatch no request runs anywhere, so no client session can interleave
// rankings from two store versions. Out-of-rotation backends are exempt:
// the entry reload covers them.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/supervisor.h"
#include "net/protocol.h"
#include "util/fdio.h"

namespace sddict::fleet {

struct ProxyOptions {
  int tcp_port = 0;  // 0 = kernel-assigned
  std::string bind_host = "127.0.0.1";
  int backlog = 64;
  std::size_t max_sessions = 256;
  std::size_t session_inflight = 8;   // unresolved requests per session
  std::size_t max_pending = 256;      // queued fleet-wide (shed beyond)
  std::size_t backend_inflight = 16;  // outstanding datalogs per backend
  std::size_t max_frame_bytes = 1 << 20;
  double idle_timeout_ms = 30000;
  double frame_timeout_ms = 10000;
  double write_timeout_ms = 10000;
  double drain_timeout_ms = 30000;
  double probe_interval_ms = 250;
  double probe_timeout_ms = 2000;   // reply deadline for any backend op
  int eject_after_failures = 3;
  double probation_ms = 1000;       // ejection -> first probation probe
  int reinstate_after_successes = 2;
  int max_failovers = 4;            // attempts per request
  double op_timeout_ms = 20000;     // epoch flip / rolling restart bound
  std::uint32_t busy_retry_ms = 25;
};

struct ProxyStats {
  std::uint64_t accepted = 0;
  std::uint64_t responses = 0;          // replies forwarded or rendered
  std::uint64_t busy_shed = 0;          // proxy-issued busy replies
  std::uint64_t failovers = 0;          // requests re-dealt after a death
  std::uint64_t backend_disconnects = 0;
  std::uint64_t ejections = 0;
  std::uint64_t reinstatements = 0;
  std::uint64_t respawns = 0;           // from the BackendSource
  std::uint64_t flips = 0;              // completed epoch flips
  std::uint64_t rolling_restarts = 0;   // completed rolling restarts
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t io_errors = 0;
  // Gauges.
  std::uint64_t active_sessions = 0;
  std::uint64_t pending = 0;            // queued, not yet dealt
  std::uint64_t in_flight = 0;          // dealt, reply not yet complete
  std::uint64_t backends_healthy = 0;
  std::uint64_t backends_total = 0;
};

std::string format_proxy_stats(const ProxyStats& s);

class FleetProxy {
 public:
  FleetProxy(BackendSource& source, const ProxyOptions& options);
  ~FleetProxy();
  FleetProxy(const FleetProxy&) = delete;
  FleetProxy& operator=(const FleetProxy&) = delete;

  // Binds and listens; throws std::runtime_error on failure.
  void start();
  int tcp_port() const { return bound_tcp_port_; }

  // Runs the event loop until request_stop(), then drains every accepted
  // request (dispatch and failover keep working during the drain) and
  // returns. Does NOT shut the BackendSource down — the caller owns that
  // ordering (drain first, then stop backends).
  void run();
  void request_stop();  // async-signal-safe

  ProxyStats stats() const;

 private:
  struct Session;
  struct SessionSlot;
  struct BackendConn;
  struct RequestRec;
  struct FleetOp;

  void accept_ready();
  void read_ready(Session& s);
  void handle_frame(Session& s, net::Frame frame);
  void handle_command(Session& s, SessionSlot& slot,
                      std::vector<std::string> tokens);
  void resolve_fronts(Session& s);
  void flush_writes(Session& s);
  void enforce_timeouts(Session& s, double now);
  void force_close(Session& s);
  std::uint32_t retry_hint() const;

  void sync_backends(double now);
  void connect_backend(BackendConn& b, double now);
  void on_backend_connected(BackendConn& b, double now);
  void close_backend(BackendConn& b, const char* why, bool count_disconnect);
  void backend_conn_lost(BackendConn& b, double now, bool count_disconnect);
  void backend_read_ready(BackendConn& b, double now);
  void consume_backend_line(BackendConn& b, std::string line, double now);
  void backend_flush(BackendConn& b);
  void probe_backends(double now);
  void probe_success(BackendConn& b, const std::vector<std::string>& tokens,
                     double now);
  void probe_failure(BackendConn& b, double now);
  void dispatch(double now);
  void requeue_or_fail(std::uint64_t key);
  void finish_request(std::uint64_t key, std::string reply_text);
  void step_fleet_op(double now);
  void finish_fleet_op(const std::string& text, bool ok);
  void render_fleet(std::ostream& os) const;

  double now_ms() const;
  ProxyStats snapshot_live() const;

  BackendSource& source_;
  ProxyOptions options_;
  int listener_ = -1;
  int bound_tcp_port_ = -1;
  fdio::WakePipe wake_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;

  std::uint64_t next_session_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;

  std::uint64_t next_key_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<RequestRec>> requests_;
  std::deque<std::uint64_t> queue_;  // keys waiting for a backend
  std::size_t rr_cursor_ = 0;        // round-robin dealing position

  FleetView view_;
  std::vector<std::unique_ptr<BackendConn>> backends_;
  bool dispatch_paused_ = false;  // epoch-flip quiesce
  std::unique_ptr<FleetOp> op_;   // at most one flip/rolling at a time

  ProxyStats live_;
  mutable std::mutex stats_mutex_;
  ProxyStats stats_;
};

}  // namespace sddict::fleet
