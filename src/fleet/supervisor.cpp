#include "fleet/supervisor.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "util/fileio.h"
#include "util/process.h"
#include "util/strings.h"

namespace sddict::fleet {

namespace {

// Parses "host:port" (trailing whitespace tolerated). Returns false on
// anything else — a half-written file cannot occur (atomic_write_file on
// the server side) but an empty one could in principle.
bool parse_addr(const std::string& text, std::string* host, int* port) {
  const std::string trimmed = trim(text);
  const std::size_t colon = trimmed.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  const std::string port_str = trimmed.substr(colon + 1);
  if (port_str.empty()) return false;
  char* end = nullptr;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  *host = trimmed.substr(0, colon);
  *port = static_cast<int>(p);
  return true;
}

}  // namespace

Supervisor::Supervisor(const SupervisorOptions& options) : options_(options) {
  if (!dir_exists(options_.state_dir)) make_dir(options_.state_dir);
  backends_.resize(static_cast<std::size_t>(std::max(options_.backends, 1)));
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend& b = backends_[i];
    b.id = static_cast<int>(i);
    b.port_file =
        options_.state_dir + "/backend_" + std::to_string(i) + ".port";
    b.backoff_ms = options_.respawn_min_ms;
    b.next_spawn_ms = 0;  // spawn at the first tick
  }
}

Supervisor::~Supervisor() { shutdown(); }

void Supervisor::spawn_backend(Backend& b, double now_ms) {
  // A stale port file from the previous incarnation would read as a bound
  // address for a listener that no longer exists.
  ::unlink(b.port_file.c_str());
  std::vector<std::string> argv;
  argv.push_back(options_.serve_binary);
  for (const std::string& a : options_.backend_args) argv.push_back(a);
  argv.push_back("--tcp=0");
  argv.push_back("--port-file=" + b.port_file);
  proc::SpawnOptions sopts;
  sopts.env.emplace_back("SDDICT_FAILPOINTS",
                         options_.backend_failpoints.empty()
                             ? std::optional<std::string>{}
                             : std::optional<std::string>{
                                   options_.backend_failpoints});
  try {
    const proc::Child child = proc::spawn(argv, sopts);
    b.pid = child.pid;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet: spawn backend %d failed: %s\n", b.id,
                 e.what());
    b.state = State::kBackoff;
    b.next_spawn_ms = now_ms + b.backoff_ms;
    b.backoff_ms = std::min(b.backoff_ms * 2, options_.respawn_max_ms);
    return;
  }
  if (b.generation > 0) ++respawns_;
  ++b.generation;
  b.state = State::kWaitPort;
  b.spawn_time_ms = now_ms;
  b.port = -1;
  b.intentional_exit = false;
}

void Supervisor::handle_exit(Backend& b, double now_ms) {
  b.pid = -1;
  b.port = -1;
  b.state = State::kBackoff;
  if (b.intentional_exit ||
      (b.up_since_ms > 0 && now_ms - b.up_since_ms > options_.stable_ms)) {
    // An asked-for restart, or a crash after a long stable stretch, is
    // not a crash loop: come back at the floor.
    b.backoff_ms = options_.respawn_min_ms;
  }
  b.next_spawn_ms = now_ms + b.backoff_ms;
  b.backoff_ms = std::min(b.backoff_ms * 2, options_.respawn_max_ms);
  b.up_since_ms = 0;
}

void Supervisor::tick(double now_ms, FleetView* view) {
  for (Backend& b : backends_) {
    if (b.pid > 0) {
      if (const auto exit_code = proc::try_wait(b.pid)) {
        std::fprintf(stderr, "fleet: backend %d (pid %d) exited %d\n", b.id,
                     static_cast<int>(b.pid), *exit_code);
        handle_exit(b, now_ms);
      }
    }
    switch (b.state) {
      case State::kBackoff:
        if (!shut_down_ && now_ms >= b.next_spawn_ms) spawn_backend(b, now_ms);
        break;
      case State::kWaitPort:
        if (file_exists(b.port_file) &&
            parse_addr(read_file_bytes(b.port_file), &b.host, &b.port)) {
          b.state = State::kUp;
          b.up_since_ms = now_ms;
          std::fprintf(stderr, "fleet: backend %d (pid %d) up at %s:%d\n",
                       b.id, static_cast<int>(b.pid), b.host.c_str(), b.port);
        } else if (now_ms - b.spawn_time_ms > options_.port_wait_ms) {
          // Wedged before bind — e.g. a bad flag or a full disk. Kill it;
          // the exit is reaped above and backoff takes over.
          std::fprintf(stderr, "fleet: backend %d never bound; killing\n",
                       b.id);
          proc::send_signal(b.pid, SIGKILL);
        }
        break;
      case State::kUp:
        break;
    }
  }
  if (view != nullptr) {
    view->backends.clear();
    for (const Backend& b : backends_)
      view->backends.push_back(FleetBackendAddr{
          b.id, b.host, b.state == State::kUp ? b.port : -1, b.generation,
          b.pid});
    view->respawns = respawns_;
  }
}

bool Supervisor::restart(int id) {
  for (Backend& b : backends_) {
    if (b.id != id) continue;
    if (b.pid <= 0) return false;
    b.intentional_exit = true;
    return proc::send_signal(b.pid, SIGTERM);
  }
  return false;
}

void Supervisor::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (Backend& b : backends_)
    if (b.pid > 0) proc::send_signal(b.pid, SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(
                            shutdown_grace_ms_);
  for (;;) {
    bool any_alive = false;
    for (Backend& b : backends_) {
      if (b.pid <= 0) continue;
      if (proc::try_wait(b.pid).has_value())
        b.pid = -1;
      else
        any_alive = true;
    }
    if (!any_alive) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      for (Backend& b : backends_) {
        if (b.pid <= 0) continue;
        proc::send_signal(b.pid, SIGKILL);
        proc::wait_exit(b.pid);
        b.pid = -1;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace sddict::fleet
