// Deterministic synthetic benchmark generator.
//
// The paper evaluates on ISCAS-89 netlists, which cannot be bundled here;
// this generator produces *stand-ins*: random gate-level circuits matching
// a named profile (PI / PO / DFF / gate counts patterned on the published
// ISCAS-89 characteristics) with ISCAS-like composition — mostly
// NAND/NOR/AND/OR/NOT with a little XOR, fanin 1-4, a recency-biased wiring
// rule that yields deep cones with reconvergent fanout, and no dangling
// logic (every gate reaches a flip-flop or output). Generation is pure:
// the same profile + seed always yields the same netlist.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace sddict {

struct SynthProfile {
  std::string name;
  std::size_t inputs = 4;
  std::size_t outputs = 2;
  std::size_t dffs = 0;
  std::size_t gates = 20;  // logic gates (excluding inputs and DFFs)
  std::uint64_t seed = 1;
};

// The generated netlist is sequential when dffs > 0; run full_scan() before
// fault work. PO count can exceed the profile by a few when the dangling-
// logic fix-up needs extra observation points.
Netlist generate_synthetic(const SynthProfile& profile);

}  // namespace sddict
