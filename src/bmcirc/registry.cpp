#include "bmcirc/registry.h"

#include <stdexcept>

#include "bmcirc/embedded.h"

namespace sddict {
namespace {

// Interface/size profiles patterned on the published ISCAS-89
// characteristics (PI, PO, DFF, gate counts). Seeds are fixed so every
// build reproduces the same stand-in circuits.
const SynthProfile kProfiles[] = {
    {"s208", 10, 1, 8, 96, 0x5208},
    {"s298", 3, 6, 14, 119, 0x5298},
    {"s344", 9, 11, 15, 160, 0x5344},
    {"s382", 3, 6, 21, 158, 0x5382},
    {"s386", 7, 7, 6, 159, 0x5386},
    {"s400", 3, 6, 21, 162, 0x5400},
    {"s420", 18, 1, 16, 196, 0x5420},
    {"s510", 19, 7, 6, 211, 0x5510},
    {"s526", 3, 6, 21, 193, 0x5526},
    {"s641", 35, 24, 19, 379, 0x5641},
    {"s820", 18, 19, 5, 289, 0x5820},
    {"s953", 16, 23, 29, 395, 0x5953},
    {"s1196", 14, 14, 18, 529, 0x51196},
    {"s1423", 17, 5, 74, 657, 0x51423},
    {"s5378", 35, 49, 179, 2779, 0x55378},
    {"s9234", 36, 39, 211, 5597, 0x59234},
};

}  // namespace

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names = {"c17", "s27"};
  for (const auto& p : kProfiles) names.push_back(p.name);
  return names;
}

std::vector<std::string> table6_circuit_names() {
  std::vector<std::string> names;
  for (const auto& p : kProfiles) names.push_back(p.name);
  return names;
}

bool is_known_benchmark(const std::string& name) {
  if (name == "c17" || name == "s27") return true;
  for (const auto& p : kProfiles)
    if (p.name == name) return true;
  return false;
}

Netlist load_benchmark(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name == "s27") return make_s27();
  for (const auto& p : kProfiles)
    if (p.name == name) return generate_synthetic(p);
  throw std::invalid_argument("unknown benchmark '" + name + "'");
}

SynthProfile benchmark_profile(const std::string& name) {
  for (const auto& p : kProfiles)
    if (p.name == name) return p;
  throw std::invalid_argument("no synthetic profile for '" + name + "'");
}

}  // namespace sddict
