#include "bmcirc/embedded.h"

#include "netlist/bench_io.h"

namespace sddict {

const char* c17_bench_text() {
  return R"(# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
}

const char* s27_bench_text() {
  return R"(# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
)";
}

Netlist make_c17() { return parse_bench_string(c17_bench_text(), "c17"); }

Netlist make_s27() { return parse_bench_string(s27_bench_text(), "s27"); }

}  // namespace sddict
