// Exact embedded benchmark circuits (small enough to transcribe reliably):
// the ISCAS-85 c17 and the ISCAS-89 s27, in .bench source form. Used by
// tests and examples; larger ISCAS circuits are substituted by the
// deterministic generator in synth.h (see DESIGN.md, substitutions).
#pragma once

#include "netlist/netlist.h"

namespace sddict {

// 5 inputs, 2 outputs, 6 NAND gates, combinational.
Netlist make_c17();

// 4 inputs, 1 output, 3 DFFs, 10 logic gates, sequential.
Netlist make_s27();

const char* c17_bench_text();
const char* s27_bench_text();

}  // namespace sddict
