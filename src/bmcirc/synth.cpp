#include "bmcirc/synth.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace sddict {
namespace {

struct NodePlan {
  GateType type = GateType::kBuf;
  std::vector<std::uint32_t> fanin;  // global ids
  std::uint32_t consumers = 0;       // gates, DFF data inputs, or PO marks
};

GateType roll_type(Rng& rng) {
  const std::uint64_t r = rng.below(100);
  if (r < 28) return GateType::kNand;
  if (r < 42) return GateType::kNor;
  if (r < 55) return GateType::kAnd;
  if (r < 68) return GateType::kOr;
  if (r < 82) return GateType::kNot;
  if (r < 85) return GateType::kBuf;
  if (r < 95) return GateType::kXor;
  return GateType::kXnor;
}

std::size_t roll_arity(GateType t, Rng& rng) {
  if (t == GateType::kNot || t == GateType::kBuf) return 1;
  // Wide XOR cones are exponentially hard for ATPG (and rare in practice).
  if (t == GateType::kXor || t == GateType::kXnor) return 2;
  const std::uint64_t r = rng.below(100);
  if (r < 70) return 2;
  if (r < 92) return 3;
  return 4;
}

// Estimated P(output = 1) under the independence assumption; used to steer
// gate-type choice so signal probabilities stay away from 0/1 (unsteered
// random logic collapses to near-constant nodes, making most faults
// untestable — unlike any synthesized circuit).
double estimate_p1(GateType t, const std::vector<double>& in) {
  auto prod = [&](bool complement) {
    double v = 1.0;
    for (double p : in) v *= complement ? 1.0 - p : p;
    return v;
  };
  switch (t) {
    case GateType::kAnd: return prod(false);
    case GateType::kNand: return 1.0 - prod(false);
    case GateType::kOr: return 1.0 - prod(true);
    case GateType::kNor: return prod(true);
    case GateType::kNot: return 1.0 - in[0];
    case GateType::kBuf: return in[0];
    case GateType::kXor:
    case GateType::kXnor: {
      double p = in[0];
      for (std::size_t i = 1; i < in.size(); ++i)
        p = p * (1.0 - in[i]) + in[i] * (1.0 - p);
      return t == GateType::kXor ? p : 1.0 - p;
    }
    default: return 0.5;
  }
}

bool accepts_extra_fanin(GateType t) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return true;
    default:
      return false;
  }
}

}  // namespace

Netlist generate_synthetic(const SynthProfile& p) {
  if (p.gates == 0) throw std::invalid_argument("generate_synthetic: no gates");
  if (p.inputs == 0) throw std::invalid_argument("generate_synthetic: no inputs");
  Rng rng(p.seed);

  const std::size_t num_sources = p.inputs + p.dffs;  // global ids [0, S)
  std::vector<NodePlan> logic(p.gates);               // global id S + i

  // Layered wiring, like a synthesized circuit: gates are spread over
  // logic levels; each gate draws mostly from the previous layer, with
  // occasional longer back-edges for reconvergence. Layered structure keeps
  // signal diversity high (random recency-window DAGs turn out massively
  // redundant — most faults untestable — which no real circuit is).
  const std::size_t num_layers =
      std::clamp<std::size_t>(8 + p.gates / 48, 6, 48);
  auto layer_of = [&](std::size_t i) { return i * num_layers / p.gates; };
  // First global id of each layer.
  std::vector<std::size_t> layer_begin(num_layers + 1, 0);
  for (std::size_t i = 0; i < p.gates; ++i) ++layer_begin[layer_of(i) + 1];
  for (std::size_t l = 0; l < num_layers; ++l)
    layer_begin[l + 1] += layer_begin[l];

  // Estimated signal probability per global id (sources at 0.5).
  std::vector<double> p1(num_sources + p.gates, 0.5);

  for (std::size_t i = 0; i < p.gates; ++i) {
    NodePlan& n = logic[i];
    n.type = roll_type(rng);
    const std::size_t layer = layer_of(i);
    const std::size_t pool = num_sources + layer_begin[layer];  // ids < layer
    std::size_t arity = std::min(roll_arity(n.type, rng), pool);
    std::unordered_set<std::uint32_t> used;
    for (std::size_t a = 0; a < arity; ++a) {
      std::uint32_t pick = 0;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const double roll = rng.uniform01();
        if (layer == 0 || roll < 0.15) {
          // Primary/pseudo input.
          pick = static_cast<std::uint32_t>(rng.below(num_sources));
        } else if (roll < 0.80) {
          // Previous layer.
          const std::size_t lo = layer_begin[layer - 1];
          const std::size_t hi = layer_begin[layer];
          pick = static_cast<std::uint32_t>(num_sources + lo +
                                            rng.below(hi - lo));
        } else {
          // Any earlier node (long back-edge).
          pick = static_cast<std::uint32_t>(rng.below(pool));
        }
        // Prefer balanced signals: re-roll once when the candidate is
        // already badly skewed (correlated skew is what breeds redundancy).
        if (!used.count(pick) &&
            (attempt >= 4 || std::abs(p1[pick] - 0.5) < 0.45))
          break;
      }
      if (used.count(pick)) continue;  // tolerate a short fanin on tiny pools
      used.insert(pick);
      n.fanin.push_back(pick);
    }
    if (n.fanin.empty()) n.fanin.push_back(static_cast<std::uint32_t>(rng.below(pool)));

    // Probability-balancing tournament: between the rolled type and two
    // more candidates (of the same arity class), keep the one whose output
    // probability is closest to 1/2.
    std::vector<double> fan_p;
    for (std::uint32_t f : n.fanin) fan_p.push_back(p1[f]);
    double best_score = std::abs(estimate_p1(n.type, fan_p) - 0.5);
    for (int c = 0; c < 2; ++c) {
      GateType cand = roll_type(rng);
      if ((n.fanin.size() == 1) !=
          (cand == GateType::kNot || cand == GateType::kBuf))
        continue;  // arity class mismatch
      const double score = std::abs(estimate_p1(cand, fan_p) - 0.5);
      if (score < best_score) {
        best_score = score;
        n.type = cand;
      }
    }
    p1[num_sources + i] = estimate_p1(n.type, fan_p);

    for (std::uint32_t f : n.fanin)
      if (f >= num_sources) ++logic[f - num_sources].consumers;
  }

  // Source consumption bookkeeping (to catch unused inputs/FF outputs).
  std::vector<std::uint32_t> source_consumers(num_sources, 0);
  for (const auto& n : logic)
    for (std::uint32_t f : n.fanin)
      if (f < num_sources) ++source_consumers[f];

  // Dangling logic nodes, latest first (they make the best observation
  // points / state inputs).
  std::vector<std::uint32_t> danglers;
  for (std::size_t i = p.gates; i-- > 0;)
    if (logic[i].consumers == 0) danglers.push_back(static_cast<std::uint32_t>(i));

  auto pop_dangler = [&]() -> std::int64_t {
    while (!danglers.empty()) {
      const std::uint32_t d = danglers.back();
      danglers.pop_back();
      if (logic[d].consumers == 0) return d;
    }
    return -1;
  };

  // DFF data sources.
  std::vector<std::uint32_t> dff_data(p.dffs);
  for (std::size_t d = 0; d < p.dffs; ++d) {
    std::int64_t pick = pop_dangler();
    if (pick < 0) pick = static_cast<std::int64_t>(rng.below(p.gates));
    dff_data[d] = static_cast<std::uint32_t>(pick);
    ++logic[dff_data[d]].consumers;
  }

  // Primary outputs (distinct logic nodes).
  std::vector<std::uint32_t> pos;
  std::unordered_set<std::uint32_t> po_set;
  for (std::size_t o = 0; o < p.outputs && pos.size() < p.gates; ++o) {
    std::int64_t pick = pop_dangler();
    while (pick >= 0 && po_set.count(static_cast<std::uint32_t>(pick)))
      pick = pop_dangler();
    if (pick < 0) {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto r = static_cast<std::uint32_t>(rng.below(p.gates));
        if (!po_set.count(r)) {
          pick = r;
          break;
        }
      }
    }
    if (pick < 0) break;
    pos.push_back(static_cast<std::uint32_t>(pick));
    po_set.insert(static_cast<std::uint32_t>(pick));
    ++logic[static_cast<std::uint32_t>(pick)].consumers;
  }

  // Remaining danglers and unused sources: attach as extra fanin to a later
  // gate, or promote to an extra PO when nothing later can absorb them.
  auto absorb = [&](std::uint32_t global_id) {
    const std::size_t first_logic =
        global_id >= num_sources ? global_id - num_sources + 1 : 0;
    for (std::size_t i = first_logic; i < p.gates; ++i) {
      NodePlan& n = logic[i];
      if (!accepts_extra_fanin(n.type) || n.fanin.size() >= 6) continue;
      if (std::find(n.fanin.begin(), n.fanin.end(), global_id) != n.fanin.end())
        continue;
      n.fanin.push_back(global_id);
      if (global_id >= num_sources) ++logic[global_id - num_sources].consumers;
      return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < p.gates; ++i) {
    if (logic[i].consumers != 0) continue;
    const auto gid = static_cast<std::uint32_t>(num_sources + i);
    if (!absorb(gid) && !po_set.count(static_cast<std::uint32_t>(i))) {
      pos.push_back(static_cast<std::uint32_t>(i));
      po_set.insert(static_cast<std::uint32_t>(i));
      ++logic[i].consumers;
    }
  }
  for (std::uint32_t s = 0; s < num_sources; ++s)
    if (source_consumers[s] == 0) absorb(s);

  // Materialize.
  Netlist nl(p.name);
  std::vector<GateId> gid(num_sources + p.gates, kNoGate);
  for (std::size_t i = 0; i < p.inputs; ++i)
    gid[i] = nl.add_gate(GateType::kInput, "I" + std::to_string(i));
  for (std::size_t d = 0; d < p.dffs; ++d)
    gid[p.inputs + d] = nl.add_dff_placeholder("FF" + std::to_string(d));
  for (std::size_t i = 0; i < p.gates; ++i) {
    std::vector<GateId> fin;
    fin.reserve(logic[i].fanin.size());
    for (std::uint32_t f : logic[i].fanin) fin.push_back(gid[f]);
    GateType t = logic[i].type;
    // A 1-fanin multi-input gate degenerates cleanly.
    if (fin.size() == 1 && (t == GateType::kAnd || t == GateType::kOr ||
                            t == GateType::kXor))
      t = GateType::kBuf;
    if (fin.size() == 1 && (t == GateType::kNand || t == GateType::kNor ||
                            t == GateType::kXnor))
      t = GateType::kNot;
    gid[num_sources + i] = nl.add_gate(t, "N" + std::to_string(i), fin);
  }
  for (std::size_t d = 0; d < p.dffs; ++d)
    nl.connect_dff(gid[p.inputs + d], gid[num_sources + dff_data[d]]);
  for (std::uint32_t o : pos) nl.mark_output(gid[num_sources + o]);
  nl.validate();
  return nl;
}

}  // namespace sddict
