// Named benchmark registry: maps the circuit names of the paper's Table 6
// (plus the exact embedded c17/s27) to netlists. The s-circuits are
// synthetic stand-ins generated at the published ISCAS-89 interface/size
// profiles (see DESIGN.md, substitutions); c17 and s27 are exact.
#pragma once

#include <string>
#include <vector>

#include "bmcirc/synth.h"
#include "netlist/netlist.h"

namespace sddict {

// All registered names, in Table 6 order (c17 and s27 first).
std::vector<std::string> benchmark_names();

// The paper's Table 6 circuit list only.
std::vector<std::string> table6_circuit_names();

bool is_known_benchmark(const std::string& name);

// Loads (or generates) the named benchmark; sequential circuits are
// returned with their DFFs — apply full_scan() before fault work.
// Throws std::invalid_argument for unknown names.
Netlist load_benchmark(const std::string& name);

// Profile used for a synthetic benchmark (for reporting); throws for the
// exact embedded circuits.
SynthProfile benchmark_profile(const std::string& name);

}  // namespace sddict
