// Greedy test-set compaction planner — the shared core of the compaction
// subsystem (ISSUE 10).
//
// The input is a symbol matrix: one symbol per (fault, test), where two
// faults are distinguished by a test exactly when their symbols at that
// test differ. Every dictionary kind projects onto this view (pass/fail
// and same/different contribute one bit per test, a multi-baseline store
// its rank-bit group, a full store the interned response id), so one
// planner serves them all.
//
// The planner walks candidate tests in a caller-chosen order and drops a
// test whenever doing so merges no equivalence classes of the induced
// fault partition (lossless), or merges few enough pairs to stay within
// `max_resolution_loss` (lossy). Candidate orders:
//
//   kAdIndex  — ascending accidental-detection-style index (total pairs
//               the test splits under the FULL set, Pomeranz/Reddy's
//               diagnostic-value ordering, arXiv 0710.4637): tests that
//               split the fewest pairs are offered up for elimination
//               first, which empirically drops the most columns.
//   kReverse  — descending test index, the classic reverse-order static
//               compaction walk (tgen/compact.h uses this front end).
//
// The incremental partition uses per-fault XOR hashes over the kept
// columns to GROUP merge candidates, but every merge is confirmed by
// comparing full representative symbol rows — hashes accelerate, they
// never decide. A final from-scratch verification pass recomputes the
// kept-column partition and cross-checks the pair count; `verified` on
// the plan records that it ran (a mismatch would be a planner bug and
// throws std::logic_error).
//
// Budgeted runs have anytime semantics: on expiry the remaining
// candidates are simply kept (a valid, merely less-compact plan) and the
// plan reports completed == false with the StopReason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/budget.h"

namespace sddict {

// Dense num_faults x num_tests symbol matrix, row-major.
class SymbolMatrix {
 public:
  SymbolMatrix(std::size_t num_faults, std::size_t num_tests)
      : num_faults_(num_faults),
        num_tests_(num_tests),
        cells_(num_faults * num_tests, 0) {}

  std::size_t num_faults() const { return num_faults_; }
  std::size_t num_tests() const { return num_tests_; }
  std::uint64_t at(std::size_t f, std::size_t t) const {
    return cells_[f * num_tests_ + t];
  }
  void set(std::size_t f, std::size_t t, std::uint64_t v) {
    cells_[f * num_tests_ + t] = v;
  }

 private:
  std::size_t num_faults_;
  std::size_t num_tests_;
  std::vector<std::uint64_t> cells_;
};

enum class CandidateOrder : std::uint8_t {
  kAdIndex = 0,
  kReverse,
};

struct PlanOptions {
  // Extra fault pairs allowed to become indistinguishable (0 = lossless).
  std::uint64_t max_resolution_loss = 0;
  CandidateOrder order = CandidateOrder::kAdIndex;
  RunBudget budget{};
};

// Per-test diagnostic contribution under the full test set.
struct TestStats {
  // Fault pairs whose symbols differ at this test (the AD-style index).
  std::uint64_t split_pairs = 0;
  // Pairs for which this test is the ONLY distinguishing column — dropping
  // the test irrecoverably merges them.
  std::uint64_t unique_pairs = 0;
};

struct CompactionPlan {
  std::vector<std::size_t> kept;     // ascending original test indices
  std::vector<std::size_t> dropped;  // ascending original test indices
  // Indistinguished fault pairs before / after (pairs_after - pairs_before
  // is the resolution loss; 0 for a lossless plan).
  std::uint64_t pairs_before = 0;
  std::uint64_t pairs_after = 0;
  std::vector<TestStats> stats;  // per original test
  bool completed = true;         // false => budget expired mid-walk
  StopReason stop_reason = StopReason::kCompleted;
  bool verified = false;  // final exact re-partition cross-check ran
};

// Number of indistinguishable fault pairs under the given columns
// (all columns when `tests` is empty is NOT a special case — pass the
// explicit list). The Table-6 resolution oracle for the planner.
std::uint64_t indistinguished_pairs(const SymbolMatrix& m,
                                    const std::vector<std::size_t>& tests);

CompactionPlan plan_compaction(const SymbolMatrix& m,
                               const PlanOptions& opts = {});

}  // namespace sddict
