// Repository-side compaction: plan a compaction of the latest published
// version of (circuit, kind) and catalog the result as a DROP-ONLY delta
// (repo/repository.h) — no store bytes are rewritten, the manifest line
// records which columns died. Serving layers then hot-swap to the new
// version through the normal acquire()/swap_store() path.
//
// The published provenance keeps the base's faults hash and config but
// derives a fresh tests hash from (base tests hash, dropped columns) —
// the compacted test set is a different test set, and staleness checks
// must see that, but the store alone cannot re-hash a TestSet it never
// sees.
#pragma once

#include <string>

#include "compact/compact.h"
#include "repo/repository.h"

namespace sddict {

struct RepoCompaction {
  CompactionReport report;
  // The new delta entry when columns were dropped; the pre-existing
  // latest entry when the store was already minimal (published == false).
  ManifestEntry entry;
  bool published = false;
};

RepoCompaction compact_published(DictionaryRepository& repo,
                                 const std::string& circuit, StoreSource kind,
                                 const CompactionOptions& opts = {});

}  // namespace sddict
