#include "compact/repo_compact.h"

#include <vector>

#include "util/hash.h"
#include "util/timer.h"

namespace sddict {

namespace {

// Derived tests hash of a compacted set: fold the dropped columns into
// the base hash so the provenance changes deterministically with the
// edit. An empty base hash stays empty (wildcard in, wildcard out).
std::string derive_tests_hash(const std::string& base_hex,
                              const std::vector<std::size_t>& dropped) {
  if (base_hex.empty()) return "";
  std::vector<std::uint64_t> words;
  words.reserve(base_hex.size() + dropped.size() + 1);
  for (char c : base_hex) words.push_back(static_cast<std::uint64_t>(c));
  words.push_back(0xC0117AC7);  // separator
  for (std::size_t d : dropped) words.push_back(d);
  return hash_hex(hash_words(words.data(), words.size(), /*seed=*/0xd17f));
}

}  // namespace

RepoCompaction compact_published(DictionaryRepository& repo,
                                 const std::string& circuit, StoreSource kind,
                                 const CompactionOptions& opts) {
  Timer timer;
  const std::uint64_t version = repo.latest_version(circuit, kind);
  if (version == 0)
    throw std::runtime_error("repo: cannot compact " + circuit + " x " +
                             store_source_name(kind) + ": nothing cataloged");
  std::shared_ptr<const SignatureStore> store = repo.acquire(circuit, kind);
  CompactionPlan plan = plan_store_compaction(*store, opts);

  RepoCompaction out;
  out.report.tests_before = store->num_tests();
  out.report.tests_after = plan.kept.size();
  out.report.dropped = plan.dropped;
  out.report.pairs_before = plan.pairs_before;
  out.report.pairs_after = plan.pairs_after;
  out.report.bytes_before = store->size_bytes();
  out.report.completed = plan.completed;
  out.report.stop_reason = plan.stop_reason;
  out.report.verified = plan.verified;

  const Manifest snapshot = repo.manifest();
  const ManifestEntry* latest = snapshot.find(circuit, kind);
  if (!latest || latest->version != version)
    throw std::runtime_error("repo: " + circuit + " x " +
                             store_source_name(kind) +
                             " changed while planning compaction");

  if (plan.dropped.empty()) {
    out.entry = *latest;
    out.published = false;
    out.report.bytes_after = store->size_bytes();
    return out;
  }

  Provenance prov = latest->provenance;
  prov.tests_hash = derive_tests_hash(prov.tests_hash, plan.dropped);
  std::vector<std::uint64_t> dropped(plan.dropped.begin(), plan.dropped.end());
  out.entry = repo.publish_delta(circuit, kind, /*added=*/nullptr,
                                 std::move(dropped), prov, timer.millis());
  out.published = true;
  out.report.bytes_after =
      repo.acquire_version(circuit, kind, out.entry.version)->size_bytes();
  return out;
}

}  // namespace sddict
