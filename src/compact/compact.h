// Dictionary-aware test-set compaction front ends (ISSUE 10 tentpole).
//
// Two entry points over the shared greedy planner (compact/plan.h):
//
//   * compact_store()   — packed-SignatureStore compaction: project the
//     store onto its symbol matrix (bit / rank-bit-group / response-id
//     lane per kind), plan an AD-index-ordered elimination, and emit a
//     fresh store over the kept columns via select_tests(). Lossless mode
//     (max_resolution_loss == 0) provably preserves the store's fault
//     partition — the compacted store distinguishes exactly the pairs the
//     original did — and because select_tests() routes through the same
//     image builder as build(), the compacted store is byte-identical to
//     building the dictionary over the kept tests directly.
//   * compact_testset() — response-matrix compaction for the generation
//     pipeline (full-response symbols): the dictionary-aware counterpart
//     of tgen/compact.h's detection-preserving reverse-order pass.
//
// Serving note: a query against a compacted store is the original query
// with the dropped columns projected out — equivalent to diagnosing the
// UNCOMPACTED store with those observations forced to kMissing (the
// engine treats missing records as don't-cares): same verdict, same
// per-fault mismatch counts, same candidate set, same margin. Candidate
// ORDER may differ within tied mismatch counts on otherwise-clean
// observations: forcing records to kMissing makes the observation look
// degraded, which engages the engine's pass/fail-projection tiebreak,
// while the compacted store sees a clean observation and keeps the
// classical fault-id order. When the projected observation retains a
// don't-care record of its own both sides are degraded with identical
// tiebreak keys and the identity is exact including order.
// project_observations() performs exactly that projection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compact/plan.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/budget.h"

namespace sddict {

struct CompactionOptions {
  // Extra indistinguishable fault pairs tolerated (0 = lossless).
  std::uint64_t max_resolution_loss = 0;
  CandidateOrder order = CandidateOrder::kAdIndex;
  RunBudget budget{};
};

struct CompactionReport {
  std::size_t tests_before = 0;
  std::size_t tests_after = 0;
  std::vector<std::size_t> dropped;  // ascending original test indices
  std::uint64_t pairs_before = 0;    // indistinguished pairs, full set
  std::uint64_t pairs_after = 0;     // indistinguished pairs, kept set
  std::size_t bytes_before = 0;      // packed store image bytes
  std::size_t bytes_after = 0;
  bool completed = true;
  StopReason stop_reason = StopReason::kCompleted;
  bool verified = false;
};

struct CompactionResult {
  SignatureStore store;
  CompactionReport report;
};

// The store's distinguishing-symbol projection: one u64 symbol per
// (fault, test). Throws std::runtime_error for a multi-baseline store of
// rank > 64 (its per-test bit group no longer fits one symbol).
SymbolMatrix store_symbols(const SignatureStore& store);

// Full-response symbols of a response matrix (one interned id per cell).
SymbolMatrix response_symbols(const ResponseMatrix& rm);

// Plan only — no new store is materialized (repository-side drop deltas).
CompactionPlan plan_store_compaction(const SignatureStore& store,
                                     const CompactionOptions& opts = {});

CompactionResult compact_store(const SignatureStore& store,
                               const CompactionOptions& opts = {});

struct TestsetCompaction {
  TestSet tests;  // kept tests, original order
  CompactionPlan plan;
};

// Drops tests that contribute no full-response pair splits (lossless by
// default); `tests` must be the set the matrix was built from.
TestsetCompaction compact_testset(const ResponseMatrix& rm,
                                  const TestSet& tests,
                                  const CompactionOptions& opts = {});

// Projects a full-width observation vector onto the kept columns.
std::vector<Observed> project_observations(
    const std::vector<Observed>& obs, const std::vector<std::size_t>& kept);

}  // namespace sddict
