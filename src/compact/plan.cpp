#include "compact/plan.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace sddict {

namespace {

std::uint64_t pairs_of(std::uint64_t n) { return n * (n - 1) / 2; }

// splitmix64 finish — mixes (test, symbol) into the per-class XOR hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t cell_hash(std::size_t t, std::uint64_t sym) {
  return mix64((static_cast<std::uint64_t>(t) << 1) ^ mix64(sym));
}

// One equivalence class of the fault partition: faults whose symbol rows
// agree on every kept column. `rep` stands in for the whole class when
// comparing rows; `hash` is the XOR of cell_hash over kept columns.
struct Class {
  std::size_t rep = 0;
  std::uint64_t count = 0;
  std::uint64_t hash = 0;
};

// Exact row comparison of two class representatives over the kept columns,
// optionally ignoring one column (the drop candidate).
bool reps_equal(const SymbolMatrix& m, const std::vector<char>& kept,
                std::size_t a, std::size_t b, std::size_t ignore) {
  for (std::size_t t = 0; t < m.num_tests(); ++t) {
    if (!kept[t] || t == ignore) continue;
    if (m.at(a, t) != m.at(b, t)) return false;
  }
  return true;
}

// Partition the faults by their symbol rows over the kept columns.
std::vector<Class> build_partition(const SymbolMatrix& m,
                                   const std::vector<char>& kept) {
  std::vector<std::size_t> order(m.num_faults());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    for (std::size_t t = 0; t < m.num_tests(); ++t) {
      if (!kept[t]) continue;
      if (m.at(a, t) != m.at(b, t)) return m.at(a, t) < m.at(b, t);
    }
    return a < b;
  });
  std::vector<Class> classes;
  for (std::size_t f : order) {
    if (!classes.empty() &&
        reps_equal(m, kept, classes.back().rep, f, m.num_tests())) {
      ++classes.back().count;
      continue;
    }
    Class c;
    c.rep = f;
    c.count = 1;
    c.hash = 0;
    for (std::size_t t = 0; t < m.num_tests(); ++t)
      if (kept[t]) c.hash ^= cell_hash(t, m.at(f, t));
    classes.push_back(c);
  }
  return classes;
}

std::uint64_t partition_pairs(const std::vector<Class>& classes) {
  std::uint64_t p = 0;
  for (const Class& c : classes) p += pairs_of(c.count);
  return p;
}

// Groups the classes that would become identical if `drop` were removed
// from the kept set. Returns the added indistinguished pairs and, via
// `merge_groups`, the exact-verified groups of class indices to merge.
std::uint64_t probe_drop(const SymbolMatrix& m, const std::vector<char>& kept,
                         const std::vector<Class>& classes, std::size_t drop,
                         std::vector<std::vector<std::size_t>>* merge_groups) {
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  buckets.reserve(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const Class& c = classes[i];
    buckets[c.hash ^ cell_hash(drop, m.at(c.rep, drop))].push_back(i);
  }
  std::uint64_t added = 0;
  for (auto& [h, members] : buckets) {
    if (members.size() < 2) continue;
    // Hash collisions only group candidates; confirm every merge by
    // comparing full representative rows with `drop` ignored.
    std::vector<char> used(members.size(), 0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (used[i]) continue;
      std::vector<std::size_t> group{members[i]};
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (used[j]) continue;
        if (reps_equal(m, kept, classes[members[i]].rep,
                       classes[members[j]].rep, drop)) {
          used[j] = 1;
          group.push_back(members[j]);
        }
      }
      if (group.size() < 2) continue;
      std::uint64_t total = 0, self = 0;
      for (std::size_t idx : group) {
        total += classes[idx].count;
        self += pairs_of(classes[idx].count);
      }
      added += pairs_of(total) - self;
      if (merge_groups) merge_groups->push_back(std::move(group));
    }
  }
  return added;
}

}  // namespace

std::uint64_t indistinguished_pairs(const SymbolMatrix& m,
                                    const std::vector<std::size_t>& tests) {
  std::vector<char> kept(m.num_tests(), 0);
  for (std::size_t t : tests) {
    if (t >= m.num_tests())
      throw std::invalid_argument(
          "indistinguished_pairs: test index out of range");
    kept[t] = 1;
  }
  return partition_pairs(build_partition(m, kept));
}

CompactionPlan plan_compaction(const SymbolMatrix& m, const PlanOptions& opts) {
  const std::size_t F = m.num_faults();
  const std::size_t T = m.num_tests();
  if (F == 0 || T == 0)
    throw std::invalid_argument("plan_compaction: empty symbol matrix");
  BudgetScope scope(opts.budget);

  CompactionPlan plan;
  plan.stats.resize(T);

  // Per-test AD-style split counts under the full set.
  for (std::size_t t = 0; t < T; ++t) {
    std::unordered_map<std::uint64_t, std::uint64_t> groups;
    for (std::size_t f = 0; f < F; ++f) ++groups[m.at(f, t)];
    std::uint64_t same = 0;
    for (const auto& [sym, n] : groups) same += pairs_of(n);
    plan.stats[t].split_pairs = pairs_of(F) - same;
  }

  std::vector<char> kept(T, 1);
  std::vector<Class> classes = build_partition(m, kept);
  plan.pairs_before = partition_pairs(classes);

  // Unique pairs: classes whose rows differ only at t merge when t is
  // dropped — probe every column against the full-set partition.
  for (std::size_t t = 0; t < T; ++t)
    plan.stats[t].unique_pairs = probe_drop(m, kept, classes, t, nullptr);

  // Candidate order.
  std::vector<std::size_t> order(T);
  std::iota(order.begin(), order.end(), 0);
  if (opts.order == CandidateOrder::kAdIndex) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (plan.stats[a].split_pairs != plan.stats[b].split_pairs)
        return plan.stats[a].split_pairs < plan.stats[b].split_pairs;
      if (plan.stats[a].unique_pairs != plan.stats[b].unique_pairs)
        return plan.stats[a].unique_pairs < plan.stats[b].unique_pairs;
      return a > b;
    });
  } else {
    std::reverse(order.begin(), order.end());
  }

  // Greedy elimination walk.
  std::uint64_t loss = 0;
  std::size_t kept_count = T;
  for (std::size_t t : order) {
    if (scope.stop()) {
      plan.completed = false;
      plan.stop_reason = scope.reason();
      break;
    }
    if (kept_count == 1) break;  // never drop the last column
    std::vector<std::vector<std::size_t>> merge_groups;
    const std::uint64_t added = probe_drop(m, kept, classes, t, &merge_groups);
    if (loss + added > opts.max_resolution_loss) continue;
    loss += added;
    kept[t] = 0;
    --kept_count;
    for (Class& c : classes) c.hash ^= cell_hash(t, m.at(c.rep, t));
    if (!merge_groups.empty()) {
      std::vector<char> dead(classes.size(), 0);
      for (const auto& group : merge_groups) {
        for (std::size_t i = 1; i < group.size(); ++i) {
          classes[group[0]].count += classes[group[i]].count;
          dead[group[i]] = 1;
        }
      }
      std::vector<Class> alive;
      alive.reserve(classes.size());
      for (std::size_t i = 0; i < classes.size(); ++i)
        if (!dead[i]) alive.push_back(classes[i]);
      classes.swap(alive);
    }
  }

  for (std::size_t t = 0; t < T; ++t)
    (kept[t] ? plan.kept : plan.dropped).push_back(t);
  plan.pairs_after = plan.pairs_before + loss;

  // Exact verification: recompute the kept-column partition from scratch
  // and cross-check the incremental pair count. A mismatch would mean the
  // hash-grouped merge bookkeeping above diverged from the ground truth —
  // a planner bug, never a data-dependent condition.
  const std::uint64_t exact = partition_pairs(build_partition(m, kept));
  if (exact != plan.pairs_after)
    throw std::logic_error(
        "plan_compaction: verification pass disagrees with incremental "
        "partition (exact " +
        std::to_string(exact) + ", incremental " +
        std::to_string(plan.pairs_after) + ")");
  plan.verified = true;
  return plan;
}

}  // namespace sddict
