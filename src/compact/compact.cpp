#include "compact/compact.h"

#include <stdexcept>
#include <string>

namespace sddict {

namespace {

PlanOptions to_plan_options(const CompactionOptions& opts) {
  PlanOptions p;
  p.max_resolution_loss = opts.max_resolution_loss;
  p.order = opts.order;
  p.budget = opts.budget;
  return p;
}

CompactionReport to_report(const CompactionPlan& plan, std::size_t tests,
                           std::size_t bytes_before) {
  CompactionReport r;
  r.tests_before = tests;
  r.tests_after = plan.kept.size();
  r.dropped = plan.dropped;
  r.pairs_before = plan.pairs_before;
  r.pairs_after = plan.pairs_after;
  r.bytes_before = bytes_before;
  r.completed = plan.completed;
  r.stop_reason = plan.stop_reason;
  r.verified = plan.verified;
  return r;
}

}  // namespace

SymbolMatrix store_symbols(const SignatureStore& store) {
  const std::size_t F = store.num_faults();
  const std::size_t T = store.num_tests();
  SymbolMatrix m(F, T);
  switch (store.kind()) {
    case StoreKind::kPassFail:
    case StoreKind::kSameDifferent:
      for (std::size_t f = 0; f < F; ++f)
        for (std::size_t t = 0; t < T; ++t)
          m.set(f, t, store.row_bit(static_cast<FaultId>(f), t) ? 1 : 0);
      break;
    case StoreKind::kMultiBaseline: {
      const std::size_t r = store.rank();
      if (r > 64)
        throw std::runtime_error(
            "store_symbols: multi-baseline rank " + std::to_string(r) +
            " exceeds 64 (per-test bit group does not fit one symbol)");
      for (std::size_t f = 0; f < F; ++f)
        for (std::size_t t = 0; t < T; ++t) {
          std::uint64_t sym = 0;
          for (std::size_t l = 0; l < r; ++l)
            if (store.row_bit(static_cast<FaultId>(f), t * r + l))
              sym |= std::uint64_t{1} << l;
          m.set(f, t, sym);
        }
      break;
    }
    case StoreKind::kFull:
      for (std::size_t f = 0; f < F; ++f) {
        const ResponseId* row = store.full_row(static_cast<FaultId>(f));
        for (std::size_t t = 0; t < T; ++t) m.set(f, t, row[t]);
      }
      break;
  }
  return m;
}

SymbolMatrix response_symbols(const ResponseMatrix& rm) {
  SymbolMatrix m(rm.num_faults(), rm.num_tests());
  for (std::size_t f = 0; f < rm.num_faults(); ++f)
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      m.set(f, t, rm.response(static_cast<FaultId>(f), t));
  return m;
}

CompactionPlan plan_store_compaction(const SignatureStore& store,
                                     const CompactionOptions& opts) {
  return plan_compaction(store_symbols(store), to_plan_options(opts));
}

CompactionResult compact_store(const SignatureStore& store,
                               const CompactionOptions& opts) {
  CompactionPlan plan = plan_store_compaction(store, opts);
  SignatureStore compacted = plan.dropped.empty()
                                 ? SignatureStore::from_bytes(store.to_bytes())
                                 : store.select_tests(plan.kept);
  CompactionReport report =
      to_report(plan, store.num_tests(), store.size_bytes());
  report.bytes_after = compacted.size_bytes();
  return CompactionResult{std::move(compacted), std::move(report)};
}

TestsetCompaction compact_testset(const ResponseMatrix& rm,
                                  const TestSet& tests,
                                  const CompactionOptions& opts) {
  if (tests.size() != rm.num_tests())
    throw std::invalid_argument(
        "compact_testset: test set size " + std::to_string(tests.size()) +
        " does not match response matrix (" + std::to_string(rm.num_tests()) +
        " tests)");
  CompactionPlan plan =
      plan_compaction(response_symbols(rm), to_plan_options(opts));
  return TestsetCompaction{tests.subset(plan.kept), std::move(plan)};
}

std::vector<Observed> project_observations(
    const std::vector<Observed>& obs, const std::vector<std::size_t>& kept) {
  std::vector<Observed> out;
  out.reserve(kept.size());
  for (std::size_t t : kept) {
    if (t >= obs.size())
      throw std::invalid_argument(
          "project_observations: kept column " + std::to_string(t) +
          " out of range (" + std::to_string(obs.size()) + " observations)");
    out.push_back(obs[t]);
  }
  return out;
}

}  // namespace sddict
