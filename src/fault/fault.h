// Single stuck-at fault model on the lines of a combinational (full-scan)
// netlist. A line is either a gate's output (the stem) or, when the driving
// gate has fanout greater than one, an individual fanin connection of a
// consumer gate (a branch). With fanout of one the branch *is* the stem, so
// only the stem fault is enumerated.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"
#include "netlist/transform.h"

namespace sddict {

using FaultId = std::uint32_t;
inline constexpr FaultId kNoFault = static_cast<FaultId>(-1);

struct StuckFault {
  GateId gate = kNoGate;   // site gate
  std::int16_t pin = -1;   // -1: output line of `gate`; >=0: fanin pin index
  std::uint8_t value = 0;  // stuck value

  bool is_output_fault() const { return pin < 0; }

  bool operator==(const StuckFault&) const = default;
};

// Human-readable site, e.g. "G10 sa1" or "G22.in0(G10) sa0".
std::string fault_name(const Netlist& nl, const StuckFault& f);

// Structural injection descriptor for miter construction.
Injection to_injection(const StuckFault& f);

}  // namespace sddict
