#include "fault/fault.h"

namespace sddict {

std::string fault_name(const Netlist& nl, const StuckFault& f) {
  std::string s = nl.gate(f.gate).name;
  if (!f.is_output_fault()) {
    const GateId driver = nl.gate(f.gate).fanin[static_cast<std::size_t>(f.pin)];
    s += ".in" + std::to_string(f.pin) + "(" + nl.gate(driver).name + ")";
  }
  s += f.value ? " sa1" : " sa0";
  return s;
}

Injection to_injection(const StuckFault& f) {
  return Injection{f.gate, f.pin, f.value != 0};
}

}  // namespace sddict
