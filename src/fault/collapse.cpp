#include "fault/collapse.h"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace sddict {
namespace {

struct FaultKey {
  GateId gate;
  std::int16_t pin;
  std::uint8_t value;
  bool operator==(const FaultKey&) const = default;
};

struct FaultKeyHasher {
  std::size_t operator()(const FaultKey& k) const {
    return (static_cast<std::size_t>(k.gate) << 18) ^
           (static_cast<std::size_t>(k.pin + 1) << 1) ^ k.value;
  }
};

using FaultIndex = std::unordered_map<FaultKey, FaultId, FaultKeyHasher>;

// The enumerated fault representing "fanin pin p of gate g stuck at v":
// the branch fault when the driver has fanout > 1, otherwise the driver's
// stem fault (same physical line).
FaultId input_line_fault(const Netlist& nl, const FaultIndex& index, GateId g,
                         std::size_t p, std::uint8_t v) {
  const GateId driver = nl.gate(g).fanin[p];
  FaultKey key;
  if (nl.gate(driver).fanout.size() > 1)
    key = {g, static_cast<std::int16_t>(p), v};
  else
    key = {driver, -1, v};
  const auto it = index.find(key);
  return it == index.end() ? kNoFault : it->second;
}

FaultId output_line_fault(const FaultIndex& index, GateId g, std::uint8_t v) {
  const auto it = index.find({g, -1, v});
  return it == index.end() ? kNoFault : it->second;
}

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), FaultId{0});
  }
  FaultId find(FaultId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(FaultId a, FaultId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller index wins so representatives are deterministic.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<FaultId> parent_;
};

}  // namespace

CollapseResult collapse_equivalent(const Netlist& nl, const FaultList& all) {
  FaultIndex index;
  for (FaultId i = 0; i < all.size(); ++i) {
    const StuckFault& f = all[i];
    index[{f.gate, f.pin, f.value}] = i;
  }

  UnionFind uf(all.size());
  auto unite_if_present = [&](FaultId a, FaultId b) {
    if (a != kNoFault && b != kNoFault) uf.unite(a, b);
  };

  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const std::size_t arity = gate.fanin.size();
    if (arity == 0) continue;

    GateType t = gate.type;
    // Degenerate single-input gates behave as BUF / NOT.
    if (arity == 1) {
      switch (t) {
        case GateType::kAnd:
        case GateType::kOr:
        case GateType::kXor:
          t = GateType::kBuf;
          break;
        case GateType::kNand:
        case GateType::kNor:
        case GateType::kXnor:
          t = GateType::kNot;
          break;
        default:
          break;
      }
    }

    switch (t) {
      case GateType::kBuf:
        for (std::uint8_t v : {0, 1})
          unite_if_present(input_line_fault(nl, index, g, 0, v),
                           output_line_fault(index, g, v));
        break;
      case GateType::kNot:
        for (std::uint8_t v : {0, 1})
          unite_if_present(input_line_fault(nl, index, g, 0, v),
                           output_line_fault(index, g, 1 - v));
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const std::uint8_t c = controlling_value(t) ? 1 : 0;
        const std::uint8_t resp = controlled_response(t) ? 1 : 0;
        const FaultId out_f = output_line_fault(index, g, resp);
        for (std::size_t p = 0; p < arity; ++p)
          unite_if_present(input_line_fault(nl, index, g, p, c), out_f);
        break;
      }
      default:
        break;  // XOR/XNOR (arity >= 2) have no local equivalences
    }
  }

  CollapseResult res;
  res.uncollapsed_count = all.size();
  res.representative_of.assign(all.size(), kNoFault);

  std::unordered_map<FaultId, FaultId> root_to_class;
  std::vector<StuckFault> reps;
  for (FaultId i = 0; i < all.size(); ++i) {
    const FaultId root = uf.find(i);
    auto [it, inserted] = root_to_class.try_emplace(
        root, static_cast<FaultId>(reps.size()));
    if (inserted) {
      reps.push_back(all[root]);
      res.class_members.emplace_back();
    }
    res.representative_of[i] = it->second;
    res.class_members[it->second].push_back(i);
  }
  res.collapsed = FaultList(std::move(reps));
  return res;
}

CollapseResult collapsed_fault_list(const Netlist& nl) {
  return collapse_equivalent(nl, enumerate_all_faults(nl));
}

std::size_t count_dominated_faults(const Netlist& nl, const FaultList& collapsed) {
  FaultIndex index;
  for (FaultId i = 0; i < collapsed.size(); ++i) {
    const StuckFault& f = collapsed[i];
    index[{f.gate, f.pin, f.value}] = i;
  }
  std::vector<bool> dominated(collapsed.size(), false);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.fanin.size() < 2 || !has_controlling_value(gate.type)) continue;
    // Output stuck at the *non*-controlled response is dominated by every
    // input stuck at the non-controlling value (e.g. AND output sa1 is
    // dominated by each input sa1).
    const std::uint8_t v = controlled_response(gate.type) ? 0 : 1;
    const FaultId out_f = output_line_fault(index, g, v);
    if (out_f != kNoFault) dominated[out_f] = true;
  }
  std::size_t n = 0;
  for (bool d : dominated) n += d ? 1 : 0;
  return n;
}

}  // namespace sddict
