#include "fault/bridge.h"

#include <stdexcept>
#include <unordered_set>

namespace sddict {

const char* bridge_type_name(BridgeType t) {
  return t == BridgeType::kWiredAnd ? "wired-AND" : "wired-OR";
}

std::string bridge_name(const Netlist& nl, const BridgingFault& f) {
  return std::string(bridge_type_name(f.type)) + "(" + nl.gate(f.a).name +
         ", " + nl.gate(f.b).name + ")";
}

bool is_non_feedback_bridge(const Netlist& nl, GateId a, GateId b) {
  if (a == b) return false;
  // Forward reachability from each net.
  auto reaches = [&](GateId from, GateId to) {
    std::vector<GateId> queue{from};
    std::unordered_set<GateId> seen{from};
    while (!queue.empty()) {
      const GateId g = queue.back();
      queue.pop_back();
      for (GateId s : nl.gate(g).fanout) {
        if (s == to) return true;
        if (seen.insert(s).second) queue.push_back(s);
      }
    }
    return false;
  };
  return !reaches(a, b) && !reaches(b, a);
}

std::vector<BridgingFault> sample_bridges(const Netlist& nl, std::size_t count,
                                          Rng& rng) {
  // Observable nets only: a bridge on a dangling net cannot be seen.
  std::vector<GateId> nets;
  for (GateId g = 0; g < nl.num_gates(); ++g)
    if (!nl.gate(g).fanout.empty() || nl.is_output(g)) nets.push_back(g);
  if (nets.size() < 2)
    throw std::runtime_error("sample_bridges: not enough nets");

  std::vector<BridgingFault> out;
  std::unordered_set<std::uint64_t> seen;
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 200 + 1000;
  while (out.size() < count && ++attempts < max_attempts) {
    GateId a = nets[rng.below(nets.size())];
    GateId b = nets[rng.below(nets.size())];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    if (seen.count(key)) continue;
    if (!is_non_feedback_bridge(nl, a, b)) continue;
    seen.insert(key);
    out.push_back({a, b,
                   rng.coin() ? BridgeType::kWiredAnd : BridgeType::kWiredOr});
  }
  return out;
}

Netlist inject_bridge(const Netlist& nl, const BridgingFault& f) {
  if (nl.has_dffs())
    throw std::runtime_error("inject_bridge: run full_scan first");
  if (!is_non_feedback_bridge(nl, f.a, f.b))
    throw std::runtime_error("inject_bridge: feedback bridge " +
                             bridge_name(nl, f));

  Netlist out(nl.name() + "_bridge");
  std::vector<GateId> gmap(nl.num_gates(), kNoGate);

  // Ancestors (transitive fanin, inclusive) of the two bridged nets. Since
  // the bridge is non-feedback, no ancestor consumes either net, so the
  // ancestor cones can be copied unmodified, the wired gate created, and
  // every remaining gate redirected to it.
  std::vector<std::uint8_t> anc(nl.num_gates(), 0);
  std::vector<GateId> queue{f.a, f.b};
  anc[f.a] = anc[f.b] = 1;
  while (!queue.empty()) {
    const GateId g = queue.back();
    queue.pop_back();
    for (GateId fi : nl.gate(g).fanin)
      if (!anc[fi]) {
        anc[fi] = 1;
        queue.push_back(fi);
      }
  }

  auto copy_gate = [&](GateId g, auto&& driver_of) {
    const Gate& gate = nl.gate(g);
    if (gate.type == GateType::kInput) {
      gmap[g] = out.add_gate(GateType::kInput, gate.name);
      return;
    }
    if (gate.type == GateType::kConst0 || gate.type == GateType::kConst1) {
      gmap[g] = out.add_gate(gate.type, gate.name);
      return;
    }
    std::vector<GateId> fin;
    fin.reserve(gate.fanin.size());
    for (GateId fi : gate.fanin) fin.push_back(driver_of(fi));
    gmap[g] = out.add_gate(gate.type, gate.name, fin);
  };

  // Inputs first (an input outside the cones may still feed later gates).
  for (GateId g : nl.inputs()) gmap[g] = out.add_gate(GateType::kInput, nl.gate(g).name);
  // Pass 1: ancestor cones, unmodified.
  for (GateId g : nl.topo_order())
    if (anc[g] && gmap[g] == kNoGate)
      copy_gate(g, [&](GateId src) { return gmap[src]; });

  const GateType t =
      f.type == BridgeType::kWiredAnd ? GateType::kAnd : GateType::kOr;
  const GateId bridged = out.add_gate(t, "bridge$", {gmap[f.a], gmap[f.b]});

  // Pass 2: everything else, reading the wired value for either net.
  auto driver_of = [&](GateId src) {
    return src == f.a || src == f.b ? bridged : gmap[src];
  };
  for (GateId g : nl.topo_order())
    if (gmap[g] == kNoGate) copy_gate(g, driver_of);

  std::size_t po_serial = 0;
  for (GateId g : nl.outputs()) {
    GateId o = driver_of(g);
    if (out.is_output(o))
      o = out.add_gate(GateType::kBuf, "po_dup" + std::to_string(po_serial), {o});
    ++po_serial;
    out.mark_output(o);
  }
  out.validate();
  return out;
}

}  // namespace sddict
