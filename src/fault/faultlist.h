// Enumeration of the uncollapsed single stuck-at fault universe of a
// combinational netlist, and the FaultList container used by the simulator,
// ATPG and dictionary layers.
#pragma once

#include <vector>

#include "fault/fault.h"

namespace sddict {

class FaultList {
 public:
  FaultList() = default;
  explicit FaultList(std::vector<StuckFault> faults) : faults_(std::move(faults)) {}

  std::size_t size() const { return faults_.size(); }
  bool empty() const { return faults_.empty(); }
  const StuckFault& operator[](FaultId i) const { return faults_[i]; }
  const std::vector<StuckFault>& faults() const { return faults_; }

  auto begin() const { return faults_.begin(); }
  auto end() const { return faults_.end(); }

 private:
  std::vector<StuckFault> faults_;
};

// All stuck-at faults on all lines: two per gate output (gates that drive
// something or are primary outputs) and two per fanout branch (fanin pins
// whose driver has fanout > 1). The netlist must be combinational.
FaultList enumerate_all_faults(const Netlist& nl);

}  // namespace sddict
