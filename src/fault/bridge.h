// Two-net bridging defects (wired-AND / wired-OR), the classic unmodeled
// defect type that stuck-at dictionaries are expected to diagnose anyway
// (paper reference [7]: Millman, McCluskey & Acken, "Diagnosing CMOS
// Bridging Faults with Stuck-at Fault Dictionaries"). The library models
// non-feedback bridges: the shorted nets must be topologically incomparable
// so the bridged circuit stays combinational.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/rng.h"

namespace sddict {

enum class BridgeType { kWiredAnd, kWiredOr };

const char* bridge_type_name(BridgeType t);

struct BridgingFault {
  GateId a = kNoGate;
  GateId b = kNoGate;
  BridgeType type = BridgeType::kWiredAnd;
};

std::string bridge_name(const Netlist& nl, const BridgingFault& f);

// True when neither net lies in the other's fanout cone (the bridge is
// non-feedback and injecting it cannot create a combinational cycle).
bool is_non_feedback_bridge(const Netlist& nl, GateId a, GateId b);

// Samples `count` distinct non-feedback bridges between observable nets,
// with random wired-AND/OR polarity. Physical adjacency data is not
// available for synthetic circuits, so candidates are drawn uniformly —
// documented as part of the substitution (DESIGN.md).
std::vector<BridgingFault> sample_bridges(const Netlist& nl, std::size_t count,
                                          Rng& rng);

// Structural injection: both nets' consumers (and output marks) read the
// wired function of the two nets instead. The source netlist must be
// combinational and the bridge non-feedback.
Netlist inject_bridge(const Netlist& nl, const BridgingFault& f);

}  // namespace sddict
