// Structural equivalence collapsing of stuck-at faults. Two faults are
// structurally equivalent when every input vector produces identical outputs
// under both; the classic local rules are applied transitively:
//
//   AND : any input sa0 == output sa0      NAND: any input sa0 == output sa1
//   OR  : any input sa1 == output sa1      NOR : any input sa1 == output sa0
//   BUF : input sa-v == output sa-v        NOT : input sa-v == output sa-!v
//
// (Single-input XOR behaves as BUF, single-input XNOR as NOT.)
//
// Equivalence collapsing is resolution-preserving: no diagnostic information
// is lost by keeping one representative per class, which is why dictionaries
// are built over the collapsed set (as in the paper).
#pragma once

#include <vector>

#include "fault/faultlist.h"

namespace sddict {

struct CollapseResult {
  // One representative fault per structural equivalence class.
  FaultList collapsed;
  // Size of the uncollapsed universe the classes partition.
  std::size_t uncollapsed_count = 0;
  // For each uncollapsed fault index, the index of its representative in
  // `collapsed`.
  std::vector<FaultId> representative_of;
  // Members of each class, as indices into the uncollapsed list.
  std::vector<std::vector<FaultId>> class_members;
};

CollapseResult collapse_equivalent(const Netlist& nl, const FaultList& all);

// Convenience: enumerate + collapse.
CollapseResult collapsed_fault_list(const Netlist& nl);

// Dominance relation report (informational; dominance collapsing is *not*
// resolution-preserving and is never used for dictionary construction).
// Returns the number of collapsed-representative faults that are dominated
// by some other fault under the classic gate-local dominance rules.
std::size_t count_dominated_faults(const Netlist& nl, const FaultList& collapsed);

}  // namespace sddict
