#include "fault/faultlist.h"

#include <stdexcept>

namespace sddict {

FaultList enumerate_all_faults(const Netlist& nl) {
  if (nl.has_dffs())
    throw std::runtime_error("enumerate_all_faults: run full_scan first");
  std::vector<StuckFault> out;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& gate = nl.gate(g);
    const bool observable_stem = !gate.fanout.empty() || nl.is_output(g);
    if (observable_stem) {
      out.push_back({g, -1, 0});
      out.push_back({g, -1, 1});
    }
    for (std::size_t p = 0; p < gate.fanin.size(); ++p) {
      if (nl.gate(gate.fanin[p]).fanout.size() > 1) {
        out.push_back({g, static_cast<std::int16_t>(p), 0});
        out.push_back({g, static_cast<std::int16_t>(p), 1});
      }
    }
  }
  return FaultList(std::move(out));
}

}  // namespace sddict
