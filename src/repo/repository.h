// DictionaryRepository: a directory of versioned, CRC-checked dictionary
// artifacts (packed SignatureStore files) described by a human-readable
// MANIFEST (repo/manifest.h), with a byte-budgeted in-memory cache and
// atomic publication of new versions.
//
// Resolution and loading. acquire() maps (circuit, kind) to the
// highest-version cataloged artifact, loads it lazily (mmap-backed by
// default) and hands out std::shared_ptr<const SignatureStore>. Loaded
// stores live in an LRU cache bounded by cache_bytes; eviction drops the
// cache's reference only — clients holding a pointer keep the store (and
// its mapping) alive until their refcount drains, at which point the store
// counts as retired. Every load is validated against the manifest: the
// file's size must equal the cataloged size and (by default) its CRC-32
// must match, so a swapped or torn artifact is a named error, never a
// silently wrong answer.
//
// Publication. publish() assigns the next version number, writes the store
// file with atomic_write_file (temp + fsync + rename), then rewrites the
// manifest the same way. A crash between the two writes leaves an orphaned
// store file and the old manifest — a consistent catalog; readers never
// observe a torn artifact or a manifest pointing at a half-written file.
// Failpoints "repo.publish.store" and "repo.publish.manifest" model a
// crash at each instant.
//
// Refresh. refresh_async() checks staleness (provenance mismatch against
// the cataloged entry) and, when stale, runs the caller's builder on the
// shared ThreadPool under a RunBudget, then publishes the result.
//
// Delta versions (ISSUE 10). publish_delta() catalogs a column edit
// against the current latest version — drop base test columns and/or
// append the columns of a small added-columns store — instead of
// rewriting the whole artifact. acquire() materializes base+delta chains
// back into flat stores through select_tests()/concat_tests(), which
// route through the same image builder as a direct build, so a
// materialized chain is byte-identical to building the same test set from
// scratch (the ctest gate). Materialized versions land in the same LRU
// cache, so a chain is walked once, not per acquire. squash() republishes
// the materialized latest as a fresh full version; squash_async() is the
// background maintenance hook that squashes once a chain grows past
// max_chain hops.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "repo/manifest.h"
#include "store/signature_store.h"
#include "util/budget.h"
#include "util/threadpool.h"

namespace sddict {

struct RepositoryOptions {
  std::size_t cache_bytes = 256ull << 20;  // in-memory cache budget
  StoreLoadMode load_mode = StoreLoadMode::kAuto;
  bool verify_file_crc = true;  // check the manifest CRC on every load
};

struct RepositoryStats {
  std::uint64_t loads = 0;      // store files parsed from disk
  std::uint64_t evictions = 0;  // cache entries dropped for the byte budget
  std::uint64_t hits = 0;       // acquire() answered from cache
  std::uint64_t misses = 0;     // acquire() that had to load
  std::uint64_t published = 0;  // versions published by this process
  std::uint64_t retired = 0;    // stores whose last reference has drained
  std::uint64_t cached_bytes = 0;
  std::uint64_t cached_entries = 0;
};

std::string format_repository_stats(const RepositoryStats& s);

class DictionaryRepository {
 public:
  static constexpr const char* kManifestName = "MANIFEST";

  // Opens (creating the directory if needed) and reads the manifest.
  // A corrupt manifest throws ManifestError here, not at first acquire.
  explicit DictionaryRepository(std::string dir, RepositoryOptions options = {});

  DictionaryRepository(const DictionaryRepository&) = delete;
  DictionaryRepository& operator=(const DictionaryRepository&) = delete;

  const std::string& dir() const { return dir_; }
  std::string manifest_path() const;

  // Snapshot of the in-memory catalog.
  Manifest manifest() const;

  // Re-reads the manifest from disk (picks up versions published by other
  // processes). Cached stores stay cached; superseded versions age out of
  // the LRU. A missing manifest file resets to an empty catalog.
  void reload();

  // Resolve + lazily load. acquire() serves the highest cataloged version;
  // both throw std::runtime_error when the artifact is absent, fails
  // size/CRC validation against its manifest entry, or fails store
  // parsing. The returned pointer stays valid after eviction and reload.
  std::shared_ptr<const SignatureStore> acquire(std::string_view circuit,
                                                StoreSource kind);
  std::shared_ptr<const SignatureStore> acquire_version(
      std::string_view circuit, StoreSource kind, std::uint64_t version);

  // Highest cataloged version for (circuit, kind); 0 when absent. The
  // cheap query fleet components poll to decide whether a served store is
  // current, without loading anything.
  std::uint64_t latest_version(std::string_view circuit,
                               StoreSource kind) const;

  // True when no version is cataloged or the latest entry's provenance
  // differs from `prov` in any field both sides fill in ("" matches all).
  bool is_stale(std::string_view circuit, StoreSource kind,
                const Provenance& prov) const;

  // Writes the store as the next version of (circuit, kind) and commits it
  // to the manifest, both atomically. Returns the new catalog entry.
  ManifestEntry publish(const std::string& circuit, StoreSource kind,
                        const SignatureStore& store, const Provenance& prov,
                        double build_ms = 0);

  // Background build-or-refresh: when (circuit, kind) is stale w.r.t.
  // `prov`, runs `builder` on the pool under `budget` and publishes the
  // result; otherwise resolves immediately with the existing entry. Builder
  // exceptions surface through the future.
  std::future<ManifestEntry> refresh_async(
      ThreadPool& pool, std::string circuit, StoreSource kind,
      std::function<SignatureStore(const RunBudget&)> builder, Provenance prov,
      RunBudget budget = {});

  // Catalogs a delta version on top of the current latest: drop the listed
  // base test columns (strictly ascending), then append the columns of
  // `added` (nullptr for a drop-only delta). The edit is trial-
  // materialized against the base before anything is written, so an
  // out-of-range drop or an incompatible added store (kind/source/fault
  // mismatch) is a named error and never reaches the catalog. The added
  // columns are written as their own CRC-covered store image; a drop-only
  // delta writes no artifact at all, only the manifest line.
  ManifestEntry publish_delta(const std::string& circuit, StoreSource kind,
                              const SignatureStore* added,
                              std::vector<std::uint64_t> dropped,
                              const Provenance& prov, double build_ms = 0);

  // Delta hops from the latest (or the given) version down to its full
  // base; 0 when the version is a full store or nothing is cataloged.
  std::size_t chain_length(std::string_view circuit, StoreSource kind) const;
  std::size_t chain_length_of(std::string_view circuit, StoreSource kind,
                              std::uint64_t version) const;

  // Materializes the latest version and republishes it as a full store
  // (the next version), collapsing the delta chain. Returns the existing
  // entry unchanged when the latest is already full.
  ManifestEntry squash(const std::string& circuit, StoreSource kind,
                       double build_ms = 0);

  // Background chain maintenance on the shared pool: squashes when the
  // latest version sits more than `max_chain` delta hops from its full
  // base, otherwise resolves with the existing latest entry.
  std::future<ManifestEntry> squash_async(ThreadPool& pool, std::string circuit,
                                          StoreSource kind,
                                          std::size_t max_chain);

  RepositoryStats stats() const;

 private:
  struct CacheSlot {
    std::shared_ptr<const SignatureStore> store;
    std::uint64_t bytes = 0;
    std::list<std::string>::iterator lru;
  };

  std::shared_ptr<const SignatureStore> acquire_entry_locked(
      const ManifestEntry& e);
  SignatureStore load_artifact_locked(const ManifestEntry& e) const;
  SignatureStore materialize_delta_locked(const ManifestEntry& e);
  ManifestEntry commit_entry_locked(ManifestEntry e,
                                    const std::string* artifact_bytes);
  std::size_t chain_length_locked(const ManifestEntry& e) const;
  void evict_to_budget_locked(const std::string& keep_key);
  Manifest read_manifest_file() const;

  std::string dir_;
  RepositoryOptions options_;

  mutable std::mutex mutex_;
  Manifest manifest_;
  std::unordered_map<std::string, CacheSlot> cache_;
  std::list<std::string> lru_;  // front = most recently used
  RepositoryStats stats_;
  // Shared with every handed-out store's deleter; counts drained stores.
  std::shared_ptr<std::atomic<std::uint64_t>> retired_;
};

}  // namespace sddict
