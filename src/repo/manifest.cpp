#include "repo/manifest.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>

#include "util/crc32.h"
#include "util/strings.h"

namespace sddict {

namespace {

constexpr std::string_view kHeaderLine = "sddict-manifest v1";

[[noreturn]] void fail(const std::string& what) { throw ManifestError("manifest: " + what); }

[[noreturn]] void fail_line(std::size_t line_no, const std::string& what) {
  fail("line " + std::to_string(line_no) + ": " + what);
}

std::uint64_t parse_u64(std::string_view v, std::size_t line_no,
                        const char* key) {
  if (v.empty() || !std::all_of(v.begin(), v.end(),
                                [](char c) { return c >= '0' && c <= '9'; }))
    fail_line(line_no, std::string("malformed ") + key + " value '" +
                           std::string(v) + "'");
  errno = 0;
  char* end = nullptr;
  const std::string s(v);
  const unsigned long long x = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size())
    fail_line(line_no, std::string("out-of-range ") + key + " value '" + s + "'");
  return x;
}

std::uint32_t parse_hex32(std::string_view v, std::size_t line_no,
                          const char* key) {
  if (v.size() < 3 || v.substr(0, 2) != "0x")
    fail_line(line_no, std::string("malformed ") + key + " value '" +
                           std::string(v) + "' (want 0x hex)");
  const std::string s(v.substr(2));
  if (s.size() > 8 || !std::all_of(s.begin(), s.end(), [](char c) {
        return std::isxdigit(static_cast<unsigned char>(c));
      }))
    fail_line(line_no, std::string("malformed ") + key + " value '" +
                           std::string(v) + "'");
  return static_cast<std::uint32_t>(std::strtoull(s.c_str(), nullptr, 16));
}

double parse_ms(std::string_view v, std::size_t line_no, const char* key) {
  const std::string s(v);
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(s.c_str(), &end);
  if (s.empty() || errno != 0 || end != s.c_str() + s.size() || x < 0)
    fail_line(line_no, std::string("malformed ") + key + " value '" + s + "'");
  return x;
}

// "-" encodes an empty provenance field; anything else must be plain hex
// (hashes) or an arbitrary whitespace-free token (config).
std::string parse_opt_hex(std::string_view v, std::size_t line_no,
                          const char* key) {
  if (v == "-") return "";
  if (v.empty() || !std::all_of(v.begin(), v.end(), [](char c) {
        return std::isxdigit(static_cast<unsigned char>(c));
      }))
    fail_line(line_no, std::string("malformed ") + key + " value '" +
                           std::string(v) + "' (want hex or -)");
  return std::string(v);
}

// The `dropped=` list: "-" or comma-joined closed ranges, strictly
// ascending and non-overlapping ("0-3,7,9-12").
std::vector<std::uint64_t> parse_index_ranges(std::string_view v,
                                              std::size_t line_no,
                                              const char* key) {
  std::vector<std::uint64_t> out;
  if (v == "-") return out;
  if (v.empty())
    fail_line(line_no, std::string("malformed ") + key + " value ''");
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const std::size_t comma = std::min(v.find(',', pos), v.size());
    const std::string_view part = v.substr(pos, comma - pos);
    const std::size_t dash = part.find('-');
    const std::string_view lo_s =
        dash == std::string_view::npos ? part : part.substr(0, dash);
    const std::string_view hi_s =
        dash == std::string_view::npos ? part : part.substr(dash + 1);
    const std::uint64_t lo = parse_u64(lo_s, line_no, key);
    const std::uint64_t hi = parse_u64(hi_s, line_no, key);
    if (hi < lo)
      fail_line(line_no, std::string("malformed ") + key + " range '" +
                             std::string(part) + "' (descending)");
    if (hi - lo >= (std::uint64_t{1} << 32))
      fail_line(line_no, std::string(key) + " range '" + std::string(part) +
                             "' too large");
    if (!out.empty() && lo <= out.back())
      fail_line(line_no, std::string("malformed ") + key + " value '" +
                             std::string(v) + "' (not strictly ascending)");
    for (std::uint64_t i = lo; i <= hi; ++i) out.push_back(i);
    if (comma == v.size()) break;
    pos = comma + 1;
  }
  return out;
}

ManifestEntry parse_entry(const std::vector<std::string>& tokens,
                          std::size_t line_no, bool is_delta) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
      fail_line(line_no, "malformed token '" + tok + "' (want key=value)");
    const std::string key = tok.substr(0, eq);
    if (!kv.emplace(key, tok.substr(eq + 1)).second)
      fail_line(line_no, "duplicate key '" + key + "'");
  }
  static const char* kRequired[] = {"circuit", "kind",   "version", "file",
                                    "bytes",   "crc",    "tests",   "faults",
                                    "config",  "build_ms", "built"};
  static const char* kDeltaOnly[] = {"base", "added", "dropped"};
  const auto required = [&](const std::string& key) {
    const bool common =
        std::find_if(std::begin(kRequired), std::end(kRequired),
                     [&](const char* k) { return key == k; }) !=
        std::end(kRequired);
    const bool delta_only =
        std::find_if(std::begin(kDeltaOnly), std::end(kDeltaOnly),
                     [&](const char* k) { return key == k; }) !=
        std::end(kDeltaOnly);
    return common || (is_delta && delta_only);
  };
  for (const char* key : kRequired)
    if (kv.find(key) == kv.end())
      fail_line(line_no, std::string("missing key '") + key + "'");
  if (is_delta)
    for (const char* key : kDeltaOnly)
      if (kv.find(key) == kv.end())
        fail_line(line_no, std::string("missing key '") + key + "'");
  for (const auto& [key, value] : kv) {
    (void)value;
    if (!required(key)) fail_line(line_no, "unknown key '" + key + "'");
  }

  ManifestEntry e;
  e.circuit = kv["circuit"];
  if (e.circuit.empty()) fail_line(line_no, "empty circuit name");
  if (!parse_store_source(kv["kind"], &e.kind))
    fail_line(line_no, "unknown dictionary kind '" + kv["kind"] + "'");
  e.version = parse_u64(kv["version"], line_no, "version");
  if (e.version == 0) fail_line(line_no, "version must be >= 1");
  e.file = kv["file"];
  const bool no_file = is_delta && e.file == "-";
  if (!no_file &&
      (e.file.empty() || e.file.find('/') != std::string::npos ||
       e.file == "." || e.file == ".."))
    fail_line(line_no, "bad file name '" + e.file +
                           "' (must be a plain name in the repository dir)");
  e.bytes = parse_u64(kv["bytes"], line_no, "bytes");
  e.file_crc = parse_hex32(kv["crc"], line_no, "crc");
  e.provenance.tests_hash = parse_opt_hex(kv["tests"], line_no, "tests");
  e.provenance.faults_hash = parse_opt_hex(kv["faults"], line_no, "faults");
  e.provenance.config = kv["config"] == "-" ? "" : kv["config"];
  e.build_ms = parse_ms(kv["build_ms"], line_no, "build_ms");
  e.built_unix = parse_u64(kv["built"], line_no, "built");

  if (is_delta) {
    e.is_delta = true;
    e.base_version = parse_u64(kv["base"], line_no, "base");
    if (e.base_version == 0) fail_line(line_no, "base must be >= 1");
    if (e.base_version >= e.version)
      fail_line(line_no, "delta base v" + std::to_string(e.base_version) +
                             " does not precede version v" +
                             std::to_string(e.version));
    e.added_tests = parse_u64(kv["added"], line_no, "added");
    e.dropped = parse_index_ranges(kv["dropped"], line_no, "dropped");
    if (e.added_tests == 0 && e.dropped.empty())
      fail_line(line_no, "empty delta (nothing added or dropped)");
    if ((e.added_tests == 0) != no_file)
      fail_line(line_no, no_file
                             ? "delta with added tests needs an artifact file"
                             : "drop-only delta must carry file=-");
    if (no_file && (e.bytes != 0 || e.file_crc != 0))
      fail_line(line_no, "drop-only delta must carry bytes=0 crc=0x00000000");
    e.file = no_file ? "" : e.file;
  }
  return e;
}

}  // namespace

std::string encode_index_ranges(const std::vector<std::uint64_t>& indices) {
  if (indices.empty()) return "-";
  std::string out;
  std::size_t i = 0;
  while (i < indices.size()) {
    std::size_t j = i;
    while (j + 1 < indices.size() && indices[j + 1] == indices[j] + 1) ++j;
    if (i > 0 && indices[i] <= indices[i - 1])
      throw std::invalid_argument(
          "encode_index_ranges: indices not strictly ascending");
    if (!out.empty()) out += ',';
    out += std::to_string(indices[i]);
    if (j > i) out += '-' + std::to_string(indices[j]);
    i = j + 1;
  }
  return out;
}

bool parse_store_source(std::string_view token, StoreSource* out) {
  for (std::uint32_t s = 0;
       s <= static_cast<std::uint32_t>(StoreSource::kDetectionList); ++s) {
    if (token == store_source_name(static_cast<StoreSource>(s))) {
      *out = static_cast<StoreSource>(s);
      return true;
    }
  }
  return false;
}

const ManifestEntry* Manifest::find(std::string_view circuit,
                                    StoreSource kind) const {
  const ManifestEntry* best = nullptr;
  for (const ManifestEntry& e : entries)
    if (e.circuit == circuit && e.kind == kind &&
        (!best || e.version > best->version))
      best = &e;
  return best;
}

const ManifestEntry* Manifest::find_version(std::string_view circuit,
                                            StoreSource kind,
                                            std::uint64_t version) const {
  for (const ManifestEntry& e : entries)
    if (e.circuit == circuit && e.kind == kind && e.version == version)
      return &e;
  return nullptr;
}

std::uint64_t Manifest::next_version(std::string_view circuit,
                                     StoreSource kind) const {
  const ManifestEntry* latest = find(circuit, kind);
  return latest ? latest->version + 1 : 1;
}

Manifest read_manifest_string(const std::string& bytes) {
  if (bytes.empty()) fail("empty manifest");

  // Locate the trailer: the file must END with the exact line
  // "crc32 0x<8 hex>\n" (optionally \r\n), and the CRC covers every byte
  // before that line. The shape check is strict on purpose — corruption of
  // any trailer byte, including its line ending, must be a named error.
  if (bytes.back() != '\n')
    fail("missing or malformed crc32 trailer line (no final newline)");
  const std::size_t nl =
      bytes.size() >= 2 ? bytes.rfind('\n', bytes.size() - 2)
                        : std::string::npos;
  const std::size_t trailer_start = nl == std::string::npos ? 0 : nl + 1;
  std::string trailer(bytes, trailer_start,
                      bytes.size() - trailer_start - 1);
  if (!trailer.empty() && trailer.back() == '\r') trailer.pop_back();
  constexpr std::string_view kTrailerPrefix = "crc32 0x";
  if (trailer.size() != kTrailerPrefix.size() + 8 ||
      trailer.compare(0, kTrailerPrefix.size(), kTrailerPrefix) != 0 ||
      !std::all_of(trailer.begin() +
                       static_cast<std::ptrdiff_t>(kTrailerPrefix.size()),
                   trailer.end(), [](char c) {
                     return std::isxdigit(static_cast<unsigned char>(c));
                   }))
    fail("missing or malformed crc32 trailer line");
  const std::uint32_t stored =
      parse_hex32(trailer.substr(kTrailerPrefix.size() - 2), 0, "crc32");
  const std::uint32_t computed =
      crc32(std::string_view(bytes).substr(0, trailer_start));
  if (stored != computed) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "checksum mismatch (stored 0x%08x, computed 0x%08x)", stored,
                  computed);
    fail(buf);
  }

  // Behind the checksum: strict line-by-line schema.
  Manifest m;
  std::size_t pos = 0, line_no = 0;
  bool saw_header = false;
  while (pos < trailer_start) {
    std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos || nl >= trailer_start) nl = trailer_start;
    std::string line = bytes.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = nl + 1;
    ++line_no;
    if (line_no == 1) {
      if (line != kHeaderLine)
        fail_line(1, "bad header '" + line + "' (want '" +
                         std::string(kHeaderLine) + "')");
      saw_header = true;
      continue;
    }
    if (line.empty()) continue;  // blank separators are fine
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;
    if (tokens[0] != "entry" && tokens[0] != "delta")
      fail_line(line_no, "unknown line '" + tokens[0] + "'");
    ManifestEntry e = parse_entry(tokens, line_no, tokens[0] == "delta");
    if (m.find_version(e.circuit, e.kind, e.version) != nullptr)
      fail_line(line_no, "duplicate entry " + e.circuit + " x " +
                             store_source_name(e.kind) + " v" +
                             std::to_string(e.version));
    m.entries.push_back(std::move(e));
  }
  if (!saw_header) fail("missing header line");
  return m;
}

Manifest read_manifest(std::istream& in) {
  std::string bytes;
  char buf[1 << 14];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    bytes.append(buf, static_cast<std::size_t>(in.gcount()));
    if (in.bad()) break;
  }
  if (in.bad()) fail("read failed (stream went bad mid-read)");
  return read_manifest_string(bytes);
}

std::string write_manifest_string(const Manifest& m) {
  std::string out(kHeaderLine);
  out += '\n';
  for (const ManifestEntry& e : m.entries) {
    char buf[160];
    out += e.is_delta ? "delta circuit=" : "entry circuit=";
    out += e.circuit;
    out += std::string(" kind=") + store_source_name(e.kind);
    out += " version=" + std::to_string(e.version);
    if (e.is_delta) out += " base=" + std::to_string(e.base_version);
    out += " file=" + (e.is_delta && e.file.empty() ? "-" : e.file);
    out += " bytes=" + std::to_string(e.bytes);
    std::snprintf(buf, sizeof buf, " crc=0x%08x", e.file_crc);
    out += buf;
    if (e.is_delta) {
      out += " added=" + std::to_string(e.added_tests);
      out += " dropped=" + encode_index_ranges(e.dropped);
    }
    out += " tests=" +
           (e.provenance.tests_hash.empty() ? "-" : e.provenance.tests_hash);
    out += " faults=" +
           (e.provenance.faults_hash.empty() ? "-" : e.provenance.faults_hash);
    out += " config=" + (e.provenance.config.empty() ? "-" : e.provenance.config);
    std::snprintf(buf, sizeof buf, " build_ms=%.3f", e.build_ms);
    out += buf;
    out += " built=" + std::to_string(e.built_unix);
    out += '\n';
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "crc32 0x%08x\n", crc32(out));
  out += buf;
  return out;
}

std::string hash_hex(const Hash128& h) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(h.hi),
                static_cast<unsigned long long>(h.lo));
  return buf;
}

Hash128 hash_testset(const TestSet& tests) {
  std::vector<std::uint64_t> words;
  words.push_back(tests.num_inputs());
  words.push_back(tests.size());
  for (std::size_t t = 0; t < tests.size(); ++t)
    for (const std::uint64_t w : tests[t].words()) words.push_back(w);
  return hash_words(words.data(), words.size(), /*seed=*/0x7e575e7);
}

Hash128 hash_faultlist(const FaultList& faults) {
  std::vector<std::uint64_t> words;
  words.reserve(faults.size() + 1);
  words.push_back(faults.size());
  for (const StuckFault& f : faults)
    words.push_back(static_cast<std::uint64_t>(f.gate) |
                    (static_cast<std::uint64_t>(
                         static_cast<std::uint16_t>(f.pin))
                     << 32) |
                    (static_cast<std::uint64_t>(f.value) << 48));
  return hash_words(words.data(), words.size(), /*seed=*/0xfa017);
}

}  // namespace sddict
