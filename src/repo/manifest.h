// CRC-checked, human-readable catalog of the artifacts in a dictionary
// repository: one line per published store version, keyed
// circuit x dictionary-kind x version, carrying the artifact's file name,
// size and CRC plus its provenance (test-set hash, fault-list hash, build
// config token, build wall time, publish timestamp).
//
// Format (strict, line-based, LF or CRLF):
//
//   sddict-manifest v1
//   entry circuit=s27 kind=same/different version=1 file=s27.same-different.v1.store
//       bytes=12288 crc=0x1a2b3c4d tests=<32 hex> faults=<32 hex>
//       config=ttype=diag,seed=7 build_ms=12.500 built=1754524800
//   delta circuit=s27 kind=same/different version=2 base=1
//       file=s27.same-different.v2.delta bytes=8192 crc=0x55aa55aa
//       added=6 dropped=0-2,9 tests=<32 hex> faults=<32 hex>
//       config=... build_ms=4.000 built=1754524860
//   crc32 0xdeadbeef
//
// (an entry is ONE line; wrapped above for readability). The trailer line
// carries the CRC-32 of every byte before it, so any byte flip or
// truncation anywhere in the file — header, entries, or the trailer
// itself — surfaces as a named ManifestError, never a crash or a silently
// wrong catalog. Unknown key=value pairs on an entry line are rejected
// (strict schema), and so are trailing bytes after the trailer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fault/faultlist.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/hash.h"

namespace sddict {

// Every manifest defect throws this, with a message naming the defect and
// (when line-scoped) the 1-based line number.
struct ManifestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Provenance of a build: what the dictionary was built FROM. Two entries
// with equal provenance describe interchangeable artifacts; a mismatch is
// what makes a cataloged entry stale. Fields left empty ("-" on disk) are
// wildcards that match anything.
struct Provenance {
  std::string tests_hash;   // hex of hash_testset(); "" = unknown
  std::string faults_hash;  // hex of hash_faultlist(); "" = unknown
  std::string config;       // whitespace-free build-config token; "" = none

  bool operator==(const Provenance&) const = default;
};

struct ManifestEntry {
  std::string circuit;
  StoreSource kind = StoreSource::kSameDifferent;
  std::uint64_t version = 0;  // 1-based, monotonic per (circuit, kind)
  std::string file;           // store file, relative to the repository dir
  std::uint64_t bytes = 0;    // exact size of the store file
  std::uint32_t file_crc = 0;  // CRC-32 of the whole store file
  Provenance provenance;
  double build_ms = 0;          // wall time of the build that produced it
  std::uint64_t built_unix = 0;  // publish time, seconds since the epoch

  // Delta records (line type "delta" instead of "entry"): the artifact is
  // not a full store but a column edit against `base_version` of the same
  // (circuit, kind): drop the listed base test columns, then append the
  // `added_tests` columns held in `file` — itself a complete, CRC-covered
  // SignatureStore image of just the added columns. A drop-only delta has
  // no artifact file: added_tests == 0 <=> file == "-" (bytes and crc 0).
  // The repository materializes base+delta chains back into flat stores.
  bool is_delta = false;
  std::uint64_t base_version = 0;      // must precede `version`
  std::uint64_t added_tests = 0;       // columns in `file`
  std::vector<std::uint64_t> dropped;  // strictly ascending base columns

  bool operator==(const ManifestEntry&) const = default;
};

struct Manifest {
  std::vector<ManifestEntry> entries;

  // Highest-version entry for (circuit, kind); nullptr when absent.
  const ManifestEntry* find(std::string_view circuit, StoreSource kind) const;
  const ManifestEntry* find_version(std::string_view circuit, StoreSource kind,
                                    std::uint64_t version) const;
  // 1 + the highest published version (1 for a first publish).
  std::uint64_t next_version(std::string_view circuit, StoreSource kind) const;
};

// Parse / serialize. read_manifest throws ManifestError on any defect;
// write_manifest_string always emits the CRC trailer the reader demands.
Manifest read_manifest_string(const std::string& bytes);
Manifest read_manifest(std::istream& in);
std::string write_manifest_string(const Manifest& m);

// The manifest's kind token (same spelling as store_source_name — none of
// the names contain whitespace). Returns false on an unknown token.
bool parse_store_source(std::string_view token, StoreSource* out);

// The `dropped=` wire form of an ascending index list: "-" when empty,
// else comma-joined closed ranges ("0-3,7,9-12"). encode throws
// std::invalid_argument on an unsorted list (the writer's bug, not data).
std::string encode_index_ranges(const std::vector<std::uint64_t>& indices);

// Provenance hashes: order-sensitive content hashes of the inputs a
// dictionary build consumes, rendered as 32 lowercase hex digits.
std::string hash_hex(const Hash128& h);
Hash128 hash_testset(const TestSet& tests);
Hash128 hash_faultlist(const FaultList& faults);

}  // namespace sddict
