#include "repo/repository.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <utility>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/fileio.h"
#include "util/timer.h"

namespace sddict {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("repo: " + what);
}

std::string cache_key(const ManifestEntry& e) {
  return e.circuit + '\0' + std::to_string(static_cast<int>(e.kind)) + '\0' +
         std::to_string(e.version);
}

// The kind token with '/' flattened so it can live inside a file name
// ("same/different" -> "same-different").
std::string kind_file_token(StoreSource kind) {
  std::string t = store_source_name(kind);
  for (char& c : t)
    if (c == '/') c = '-';
  return t;
}

}  // namespace

std::string format_repository_stats(const RepositoryStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "repo loads=%llu evictions=%llu hits=%llu misses=%llu "
                "published=%llu retired=%llu cached_entries=%llu "
                "cached_bytes=%llu",
                static_cast<unsigned long long>(s.loads),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.published),
                static_cast<unsigned long long>(s.retired),
                static_cast<unsigned long long>(s.cached_entries),
                static_cast<unsigned long long>(s.cached_bytes));
  return buf;
}

DictionaryRepository::DictionaryRepository(std::string dir,
                                           RepositoryOptions options)
    : dir_(std::move(dir)),
      options_(options),
      retired_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  if (dir_.empty()) fail("empty repository directory");
  while (dir_.size() > 1 && dir_.back() == '/') dir_.pop_back();
  if (!dir_exists(dir_)) make_dir(dir_);
  manifest_ = read_manifest_file();
}

std::string DictionaryRepository::manifest_path() const {
  return dir_ + "/" + kManifestName;
}

Manifest DictionaryRepository::read_manifest_file() const {
  const std::string path = manifest_path();
  if (!file_exists(path)) return Manifest{};
  return read_manifest_string(read_file_bytes(path));
}

Manifest DictionaryRepository::manifest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return manifest_;
}

void DictionaryRepository::reload() {
  Manifest fresh = read_manifest_file();  // parse outside the lock
  std::lock_guard<std::mutex> lock(mutex_);
  manifest_ = std::move(fresh);
}

std::shared_ptr<const SignatureStore> DictionaryRepository::acquire(
    std::string_view circuit, StoreSource kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* e = manifest_.find(circuit, kind);
  if (!e)
    fail("no artifact cataloged for " + std::string(circuit) + " x " +
         store_source_name(kind));
  return acquire_entry_locked(*e);
}

std::shared_ptr<const SignatureStore> DictionaryRepository::acquire_version(
    std::string_view circuit, StoreSource kind, std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* e = manifest_.find_version(circuit, kind, version);
  if (!e)
    fail("no artifact cataloged for " + std::string(circuit) + " x " +
         store_source_name(kind) + " v" + std::to_string(version));
  return acquire_entry_locked(*e);
}

std::shared_ptr<const SignatureStore> DictionaryRepository::acquire_entry_locked(
    const ManifestEntry& e) {
  const std::string key = cache_key(e);
  if (auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.store;
  }
  ++stats_.misses;

  SignatureStore loaded =
      e.is_delta ? materialize_delta_locked(e) : load_artifact_locked(e);
  ++stats_.loads;

  // The deleter fires when the LAST reference — cache or client — drains,
  // which is exactly when an old version is fully retired.
  auto retired = retired_;
  std::shared_ptr<const SignatureStore> store(
      new SignatureStore(std::move(loaded)), [retired](const SignatureStore* p) {
        delete p;
        retired->fetch_add(1, std::memory_order_relaxed);
      });

  const std::uint64_t cached_bytes = store->size_bytes();
  lru_.push_front(key);
  cache_.emplace(key, CacheSlot{store, cached_bytes, lru_.begin()});
  stats_.cached_bytes += cached_bytes;
  stats_.cached_entries = cache_.size();
  evict_to_budget_locked(key);
  return store;
}

SignatureStore DictionaryRepository::load_artifact_locked(
    const ManifestEntry& e) const {
  const std::string path = dir_ + "/" + e.file;
  SignatureStore loaded = SignatureStore::load_file(path, options_.load_mode);
  if (loaded.size_bytes() != e.bytes)
    fail("artifact " + e.file + " size mismatch (manifest says " +
         std::to_string(e.bytes) + " bytes, file has " +
         std::to_string(loaded.size_bytes()) + ")");
  if (options_.verify_file_crc) {
    const std::uint32_t crc = crc32(std::string_view(
        reinterpret_cast<const char*>(loaded.data()), loaded.size_bytes()));
    if (crc != e.file_crc) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    " checksum mismatch (manifest 0x%08x, file 0x%08x)",
                    e.file_crc, crc);
      fail("artifact " + e.file + buf);
    }
  }
  return loaded;
}

SignatureStore DictionaryRepository::materialize_delta_locked(
    const ManifestEntry& e) {
  const std::string label = e.circuit + " x " +
                            std::string(store_source_name(e.kind)) + " v" +
                            std::to_string(e.version);
  const ManifestEntry* base =
      manifest_.find_version(e.circuit, e.kind, e.base_version);
  if (!base)
    fail("delta " + label + " references missing base v" +
         std::to_string(e.base_version));
  // Walks (and caches) the chain: base < version strictly, so this
  // recursion always terminates at a full store.
  std::shared_ptr<const SignatureStore> base_store =
      acquire_entry_locked(*base);

  std::vector<std::size_t> kept;
  kept.reserve(base_store->num_tests());
  {
    std::size_t d = 0;
    for (std::size_t t = 0; t < base_store->num_tests(); ++t) {
      if (d < e.dropped.size() && e.dropped[d] == t) {
        ++d;
        continue;
      }
      kept.push_back(t);
    }
    if (d != e.dropped.size())
      fail("delta " + label + " drops column " +
           std::to_string(e.dropped[d]) + " out of range (base has " +
           std::to_string(base_store->num_tests()) + " tests)");
  }
  if (kept.empty())
    fail("delta " + label + " drops every base test column");

  if (e.added_tests == 0) return base_store->select_tests(kept);

  SignatureStore added = load_artifact_locked(e);
  if (added.num_tests() != e.added_tests)
    fail("delta artifact " + e.file + " holds " +
         std::to_string(added.num_tests()) + " test columns, manifest says " +
         std::to_string(e.added_tests));
  if (e.dropped.empty())
    return SignatureStore::concat_tests(*base_store, added);
  return SignatureStore::concat_tests(base_store->select_tests(kept), added);
}

void DictionaryRepository::evict_to_budget_locked(const std::string& keep_key) {
  // Never evict the entry just inserted, even when it alone busts the
  // budget — the caller is about to use it.
  while (stats_.cached_bytes > options_.cache_bytes && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    if (victim == keep_key) break;  // keep_key is LRU-last only when alone
    auto it = cache_.find(victim);
    stats_.cached_bytes -= it->second.bytes;
    ++stats_.evictions;
    cache_.erase(it);
    lru_.pop_back();
  }
  stats_.cached_entries = cache_.size();
}

std::uint64_t DictionaryRepository::latest_version(std::string_view circuit,
                                                   StoreSource kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* e = manifest_.find(circuit, kind);
  return e ? e->version : 0;
}

bool DictionaryRepository::is_stale(std::string_view circuit, StoreSource kind,
                                    const Provenance& prov) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* e = manifest_.find(circuit, kind);
  if (!e) return true;
  const Provenance& have = e->provenance;
  const auto differs = [](const std::string& a, const std::string& b) {
    return !a.empty() && !b.empty() && a != b;
  };
  return differs(have.tests_hash, prov.tests_hash) ||
         differs(have.faults_hash, prov.faults_hash) ||
         differs(have.config, prov.config);
}

ManifestEntry DictionaryRepository::publish(const std::string& circuit,
                                            StoreSource kind,
                                            const SignatureStore& store,
                                            const Provenance& prov,
                                            double build_ms) {
  if (circuit.empty()) fail("empty circuit name");
  if (circuit.find_first_of(" \t/\\\r\n") != std::string::npos)
    fail("circuit name '" + circuit + "' has whitespace or path separators");
  const std::string bytes = store.to_bytes();

  std::lock_guard<std::mutex> lock(mutex_);
  ManifestEntry e;
  e.circuit = circuit;
  e.kind = kind;
  e.version = manifest_.next_version(circuit, kind);
  e.file = circuit + "." + kind_file_token(kind) + ".v" +
           std::to_string(e.version) + ".store";
  e.bytes = bytes.size();
  e.file_crc = crc32(bytes);
  e.provenance = prov;
  e.build_ms = build_ms;
  e.built_unix = static_cast<std::uint64_t>(std::time(nullptr));

  return commit_entry_locked(std::move(e), &bytes);
}

ManifestEntry DictionaryRepository::commit_entry_locked(
    ManifestEntry e, const std::string* artifact_bytes) {
  // Artifact file first, manifest second: a crash in between orphans the
  // artifact but never catalogs a missing or torn file. Drop-only deltas
  // carry no artifact and commit with the manifest write alone.
  SDDICT_FAILPOINT("repo.publish.store");
  if (artifact_bytes) atomic_write_file(dir_ + "/" + e.file, *artifact_bytes);

  Manifest next = manifest_;
  next.entries.push_back(e);
  const std::string text = write_manifest_string(next);
  SDDICT_FAILPOINT("repo.publish.manifest");
  atomic_write_file(manifest_path(), text);

  manifest_ = std::move(next);
  ++stats_.published;
  return e;
}

ManifestEntry DictionaryRepository::publish_delta(
    const std::string& circuit, StoreSource kind, const SignatureStore* added,
    std::vector<std::uint64_t> dropped, const Provenance& prov,
    double build_ms) {
  if (circuit.empty()) fail("empty circuit name");
  if (circuit.find_first_of(" \t/\\\r\n") != std::string::npos)
    fail("circuit name '" + circuit + "' has whitespace or path separators");
  if (!added && dropped.empty())
    fail("empty delta (nothing added or dropped)");
  for (std::size_t i = 1; i < dropped.size(); ++i)
    if (dropped[i] <= dropped[i - 1])
      fail("dropped columns must be strictly ascending");

  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* latest = manifest_.find(circuit, kind);
  if (!latest)
    fail("cannot publish a delta for " + circuit + " x " +
         store_source_name(kind) + ": nothing cataloged");

  ManifestEntry e;
  e.circuit = circuit;
  e.kind = kind;
  e.version = latest->version + 1;
  e.base_version = latest->version;
  e.is_delta = true;
  e.added_tests = added ? added->num_tests() : 0;
  e.dropped = std::move(dropped);
  e.provenance = prov;
  e.build_ms = build_ms;
  e.built_unix = static_cast<std::uint64_t>(std::time(nullptr));

  std::string added_bytes;
  if (added) {
    e.file = circuit + "." + kind_file_token(kind) + ".v" +
             std::to_string(e.version) + ".delta";
    added_bytes = added->to_bytes();
    e.bytes = added_bytes.size();
    e.file_crc = crc32(added_bytes);
  }

  // Trial-materialize against the (cached) base before writing anything:
  // an out-of-range drop, a drop-everything edit, or an added store whose
  // kind/source/shape disagrees with the base dies here with a named
  // error instead of poisoning the catalog. The added columns are checked
  // via the exact concat path acquire() will use.
  {
    const ManifestEntry* base = latest;
    std::shared_ptr<const SignatureStore> base_store =
        acquire_entry_locked(*base);
    for (std::uint64_t d : e.dropped)
      if (d >= base_store->num_tests())
        fail("dropped column " + std::to_string(d) +
             " out of range (base has " +
             std::to_string(base_store->num_tests()) + " tests)");
    if (e.dropped.size() == base_store->num_tests())
      fail("delta drops every base test column");
    if (added) {
      std::vector<std::size_t> kept;
      for (std::size_t t = 0; t < base_store->num_tests(); ++t)
        if (!std::binary_search(e.dropped.begin(), e.dropped.end(), t))
          kept.push_back(t);
      SignatureStore trial =
          e.dropped.empty()
              ? SignatureStore::concat_tests(*base_store, *added)
              : SignatureStore::concat_tests(base_store->select_tests(kept),
                                             *added);
      (void)trial;
    }
  }

  return commit_entry_locked(std::move(e),
                             added ? &added_bytes : nullptr);
}

std::size_t DictionaryRepository::chain_length_locked(
    const ManifestEntry& e) const {
  std::size_t hops = 0;
  const ManifestEntry* cur = &e;
  while (cur && cur->is_delta) {
    ++hops;
    cur = manifest_.find_version(cur->circuit, cur->kind, cur->base_version);
  }
  return hops;
}

std::size_t DictionaryRepository::chain_length(std::string_view circuit,
                                               StoreSource kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* e = manifest_.find(circuit, kind);
  return e ? chain_length_locked(*e) : 0;
}

std::size_t DictionaryRepository::chain_length_of(std::string_view circuit,
                                                  StoreSource kind,
                                                  std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* e = manifest_.find_version(circuit, kind, version);
  return e ? chain_length_locked(*e) : 0;
}

ManifestEntry DictionaryRepository::squash(const std::string& circuit,
                                           StoreSource kind, double build_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  const ManifestEntry* latest = manifest_.find(circuit, kind);
  if (!latest)
    fail("cannot squash " + circuit + " x " + store_source_name(kind) +
         ": nothing cataloged");
  if (!latest->is_delta) return *latest;

  std::shared_ptr<const SignatureStore> flat = acquire_entry_locked(*latest);
  const std::string bytes = flat->to_bytes();
  ManifestEntry e;
  e.circuit = circuit;
  e.kind = kind;
  e.version = latest->version + 1;
  e.file = circuit + "." + kind_file_token(kind) + ".v" +
           std::to_string(e.version) + ".store";
  e.bytes = bytes.size();
  e.file_crc = crc32(bytes);
  e.provenance = latest->provenance;
  e.build_ms = build_ms;
  e.built_unix = static_cast<std::uint64_t>(std::time(nullptr));
  return commit_entry_locked(std::move(e), &bytes);
}

std::future<ManifestEntry> DictionaryRepository::squash_async(
    ThreadPool& pool, std::string circuit, StoreSource kind,
    std::size_t max_chain) {
  auto prom = std::make_shared<std::promise<ManifestEntry>>();
  std::future<ManifestEntry> fut = prom->get_future();
  pool.submit([this, prom, circuit = std::move(circuit), kind, max_chain] {
    try {
      if (chain_length(circuit, kind) <= max_chain) {
        std::lock_guard<std::mutex> lock(mutex_);
        const ManifestEntry* e = manifest_.find(circuit, kind);
        if (!e)
          fail("cannot squash " + circuit + " x " + store_source_name(kind) +
               ": nothing cataloged");
        prom->set_value(*e);
        return;
      }
      Timer timer;
      // Re-checks under squash()'s own lock; a concurrent squash that
      // already flattened the chain makes this a no-op returning latest.
      ManifestEntry e = squash(circuit, kind, timer.millis());
      prom->set_value(std::move(e));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return fut;
}

std::future<ManifestEntry> DictionaryRepository::refresh_async(
    ThreadPool& pool, std::string circuit, StoreSource kind,
    std::function<SignatureStore(const RunBudget&)> builder, Provenance prov,
    RunBudget budget) {
  auto prom = std::make_shared<std::promise<ManifestEntry>>();
  std::future<ManifestEntry> fut = prom->get_future();
  pool.submit([this, prom, circuit = std::move(circuit), kind,
               builder = std::move(builder), prov = std::move(prov), budget] {
    try {
      if (!is_stale(circuit, kind, prov)) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const ManifestEntry* e = manifest_.find(circuit, kind)) {
          prom->set_value(*e);
          return;
        }
      }
      Timer timer;
      SignatureStore built = builder(budget);
      prom->set_value(publish(circuit, kind, built, prov, timer.millis()));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return fut;
}

RepositoryStats DictionaryRepository::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RepositoryStats s = stats_;
  s.retired = retired_->load(std::memory_order_relaxed);
  return s;
}

}  // namespace sddict
