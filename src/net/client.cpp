#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/fdio.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sddict::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_io_timeouts(int fd, double timeout_s) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

double compute_backoff_delay_ms(double hint_ms, double backoff_ms,
                                double max_ms, double u) {
  const double target = std::max(hint_ms, backoff_ms);
  const double excess = target - hint_ms;
  double delay = hint_ms + excess * (0.5 + 0.5 * u);
  delay = std::min(delay, max_ms);
  // The hint outranks the cap: sleeping less than the server asked just
  // earns another shed.
  return std::max(delay, hint_ms);
}

Client Client::connect_tcp(const std::string& host, int port,
                           double timeout_s) {
  ::signal(SIGPIPE, SIG_IGN);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  set_io_timeouts(fd, timeout_s);
  return Client(fd);
}

Client Client::connect_unix(const std::string& path, double timeout_s) {
  ::signal(SIGPIPE, SIG_IGN);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + path);
  }
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect " + path);
  }
  set_io_timeouts(fd, timeout_s);
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), inbuf_(std::move(other.inbuf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Client::send_raw(const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const fdio::IoResult r =
        fdio::write_some(fd_, bytes.data() + off, bytes.size() - off);
    if (r.would_block)  // SO_SNDTIMEO expired
      throw std::runtime_error("client write timed out");
    if (r.failed)
      throw std::runtime_error(std::string("client write failed: ") +
                               std::strerror(r.errno_value));
    off += static_cast<std::size_t>(r.n);
  }
}

void Client::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

std::string Client::read_line() {
  for (;;) {
    const std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      return line;
    }
    char buf[4096];
    const fdio::IoResult r = fdio::read_some(fd_, buf, sizeof buf);
    if (r.would_block)  // SO_RCVTIMEO expired
      throw std::runtime_error("client read timed out");
    if (r.failed)
      throw std::runtime_error(std::string("client read failed: ") +
                               std::strerror(r.errno_value));
    if (r.n == 0)
      throw std::runtime_error("server closed connection mid-reply");
    inbuf_.append(buf, static_cast<std::size_t>(r.n));
  }
}

Reply Client::read_reply() {
  Reply reply;
  for (;;) {
    std::string line = read_line();
    const bool done = line == "done";
    reply.lines.push_back(std::move(line));
    if (done) break;
  }
  const std::vector<std::string> head = split_ws(reply.lines.front());
  if (!head.empty() && head[0] == "busy") {
    reply.busy = true;
    for (const std::string& tok : head)
      if (tok.rfind("retry_after_ms=", 0) == 0)
        reply.retry_after_ms = static_cast<std::uint32_t>(
            std::strtoul(tok.c_str() + 15, nullptr, 10));
  } else if (!head.empty() && head[0] == "error") {
    reply.error = true;
    const std::string& first = reply.lines.front();
    reply.error_text = first.size() > 6 ? first.substr(6) : "";
  }
  return reply;
}

Reply Client::request(const std::string& frame) {
  send_raw(frame);
  return read_reply();
}

Reply Client::request_with_retry(const std::string& frame,
                                 const BackoffPolicy& policy) {
  Rng rng(policy.seed);
  double backoff = policy.base_ms;
  for (int attempt = 0;; ++attempt) {
    Reply reply = request(frame);
    reply.busy_retries = attempt;
    if (!reply.busy || attempt >= policy.max_attempts) return reply;
    const double delay = compute_backoff_delay_ms(
        reply.retry_after_ms, backoff, policy.max_ms, rng.uniform01());
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(delay * 1000)));
    backoff = std::min<double>(backoff * policy.factor, policy.max_ms);
  }
}

std::string Client::command_line(const std::string& line) {
  send_raw(line + "\n");
  return read_line();
}

}  // namespace sddict::net
