#include "net/protocol.h"

#include "util/strings.h"

namespace sddict::net {

void write_response(std::ostream& out, const ServiceResponse& resp,
                    std::size_t dropped) {
  const EngineDiagnosis& d = resp.diagnosis;
  out << "diagnosis " << diagnosis_outcome_name(d.outcome)
      << " best=" << d.best_mismatches << " margin=" << d.margin
      << " effective=" << d.effective_tests << " dont_care=" << d.dont_care_tests
      << " unknown=" << d.unknown_tests << " completed=" << (d.completed ? 1 : 0)
      << " stop=" << stop_reason_name(d.stop_reason);
  if (dropped > 0) out << " dropped=" << dropped;
  out << "\n";
  for (std::size_t i = 0; i < d.matches.size(); ++i)
    out << "candidate " << (i + 1) << " fault=" << d.matches[i].fault
        << " mismatches=" << d.matches[i].mismatches << "\n";
  if (d.outcome == DiagnosisOutcome::kUnmodeledDefect && !d.cover.empty()) {
    out << "cover";
    for (FaultId f : d.cover) out << " fault=" << f;
    out << " uncovered=" << d.uncovered_failures << "\n";
  }
  out << "timing latency_ms=" << resp.latency_ms
      << " cache_hit=" << (resp.cache_hit ? 1 : 0) << "\n";
  out << "done\n";
}

void write_error(std::ostream& out, const std::string& what) {
  out << "error " << what << "\n" << "done\n";
}

void write_busy(std::ostream& out, std::uint32_t retry_after_ms) {
  out << "busy retry_after_ms=" << retry_after_ms << "\n" << "done\n";
}

bool is_session_frame(const std::string& frame_text) {
  const std::size_t eol = frame_text.find('\n');
  const std::vector<std::string> toks = split_ws(
      eol == std::string::npos ? frame_text : frame_text.substr(0, eol));
  return !toks.empty() && toks[0] == "session";
}

void FrameReader::feed(const char* data, std::size_t n) {
  if (oversized_) return;  // session is doomed; stop buffering
  for (std::size_t i = 0; i < n; ++i) {
    if (buffer_.size() + block_.size() >= max_frame_bytes_) {
      oversized_ = true;
      buffer_.clear();
      block_.clear();
      in_block_ = false;
      Frame f;
      f.type = Frame::Type::kOversize;
      ready_.push_back(std::move(f));
      return;
    }
    const char c = data[i];
    if (c == '\n') {
      take_line(std::move(buffer_));
      buffer_.clear();
    } else {
      buffer_.push_back(c);
    }
  }
}

// Mirrors the blocking session loop's framing exactly: command lines are
// only recognized outside a block; every other line (even a blank one)
// accumulates into the block; a well-formed `end` line closes it — the
// same rule the datalog reader itself uses.
void FrameReader::take_line(std::string line) {
  const std::vector<std::string> tokens = split_ws(line);
  if (!in_block_ && !tokens.empty() &&
      (tokens[0][0] == '!' ||
       (tokens.size() == 1 && (tokens[0] == "stats" || tokens[0] == "quit")))) {
    Frame f;
    f.type = Frame::Type::kCommand;
    f.tokens = tokens;
    f.text = std::move(line);
    ready_.push_back(std::move(f));
    return;
  }
  if (!tokens.empty()) in_block_ = true;
  block_ += line;
  block_ += '\n';
  if (tokens.size() == 1 && tokens[0] == "end") {
    Frame f;
    f.type = Frame::Type::kDatalog;
    f.text = std::move(block_);
    block_.clear();
    in_block_ = false;
    ready_.push_back(std::move(f));
  }
}

bool FrameReader::next(Frame* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace sddict::net
