// Blocking client for the sddict_serve line protocol (TCP or Unix
// socket): sends one datalog frame, reads the reply up to its closing
// `done`, and understands the explicit `busy retry_after_ms=N` load-shed
// reply — request_with_retry() honors the server's hint with capped,
// jittered exponential backoff, which is the retry discipline the soak
// generator (bench/bench_soak.cpp) drives thousands of requests through.
//
// Deliberately synchronous and single-connection: the concurrency in the
// system lives server-side; clients are testers, chaos probes, and load
// workers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sddict::net {

struct BackoffPolicy {
  std::uint32_t base_ms = 10;
  std::uint32_t max_ms = 2000;
  double factor = 2.0;
  int max_attempts = 12;
  std::uint64_t seed = 1;  // deterministic jitter stream
};

// The retry schedule's delay for one attempt: the server's retry_after_ms
// hint is a hard floor; only the exponential-backoff portion *above* the
// hint is jittered into [50%, 100%] (so a shed herd doesn't return in
// lockstep but nobody comes back before the server asked). `u` is a
// uniform draw in [0, 1). The max_ms cap applies to the jittered excess,
// never to the hint itself. Pure, for unit testing.
double compute_backoff_delay_ms(double hint_ms, double backoff_ms,
                                double max_ms, double u);

struct Reply {
  bool busy = false;                // the server shed this request
  std::uint32_t retry_after_ms = 0; // its suggested delay (busy only)
  bool error = false;               // `error ...` reply
  std::string error_text;
  std::vector<std::string> lines;   // every reply line incl. `done`
  int busy_retries = 0;             // retries request_with_retry spent
};

class Client {
 public:
  // Throw std::runtime_error on connection failure. `timeout_s` bounds
  // every subsequent read/write (SO_RCVTIMEO/SO_SNDTIMEO) so a wedged
  // server surfaces as an exception, not a hang.
  static Client connect_tcp(const std::string& host, int port,
                            double timeout_s = 30);
  static Client connect_unix(const std::string& path, double timeout_s = 30);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Sends the frame (must end with its `end\n` line) and reads one reply.
  // Throws std::runtime_error on I/O failure, timeout, or EOF mid-reply.
  Reply request(const std::string& frame);

  // request(), but busy replies are retried with exponential backoff per
  // compute_backoff_delay_ms(): the server's retry_after_ms hint is a
  // hard floor, the exponential excess above it is jittered into
  // [50%, 100%] and capped at max_ms. Returns the first non-busy reply,
  // or the last busy one when max_attempts is exhausted.
  Reply request_with_retry(const std::string& frame,
                           const BackoffPolicy& policy = {});

  // Sends a bare command line ("stats") and reads its single reply line.
  std::string command_line(const std::string& line);

  // Reads one reply (or line) without sending anything — for pipelined
  // use: send_raw several frames, then collect each reply in order.
  Reply read_reply();
  std::string read_line();

  // Chaos helpers: raw bytes with no framing, and a half-close of the
  // write side (what a mid-frame client death looks like to the server).
  void send_raw(const std::string& bytes);
  void shutdown_write();

  void close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace sddict::net
