// Event-loop TCP (+ Unix-socket) front end over the DiagnosisService MPMC
// batcher: one poll() loop multiplexes every client session, so the
// serving tier survives what the old accept-and-serve-serially loop could
// not — bursty concurrent connections, slow-loris peers, mid-frame
// disconnects, and sustained overload.
//
// Robustness model, in order of the request path:
//
//   accept      EINTR-retried; over max_sessions the connection gets a
//               best-effort `busy` reply and is closed (connection-level
//               admission control).
//   read        nonblocking, short-read/EINTR tolerant (util/fdio.h
//               failpoints inject both); per-session frame-size cap and
//               slow-loris/idle timers; a malformed datalog poisons only
//               its own reply (`error ... done`), never the loop.
//   admit       parsed requests enter a bounded server-side pending queue
//               and are fed to DiagnosisService::try_submit as capacity
//               allows (the loop never blocks in submit()). Three explicit
//               shed points, all answered with `busy retry_after_ms=N`,
//               never a silent drop: per-session in-flight cap, global
//               in-flight cap via the pending-queue overflow — which sheds
//               OLDEST-deadline-first, because under overload the oldest
//               queued request is the one whose client has waited longest
//               and is closest to giving up — and service-queue-full.
//   respond     per-session replies always drain in request order (admin
//               verbs and `stats` are sequenced in-order too); writes are
//               nonblocking with short-write tolerance and a no-progress
//               timeout.
//   shutdown    request_stop() (async-signal-safe) stops accepting and
//               reading, completes every accepted request, flushes every
//               reply, then returns from run() — bounded by
//               drain_timeout_ms.
//
// The loop itself is single-threaded; concurrency lives in the service's
// dispatcher/pool. stats() may be called from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "serve/diagnosis_service.h"
#include "util/fdio.h"

namespace sddict::net {

struct NetServerOptions {
  int tcp_port = -1;           // -1 = no TCP listener; 0 = kernel-assigned
  std::string bind_host = "127.0.0.1";
  std::string unix_path;       // empty = no Unix listener
  int backlog = 64;
  std::size_t max_sessions = 256;
  std::size_t max_inflight = 64;     // requests dispatched into the service
  std::size_t session_inflight = 8;  // unresolved requests per session
  std::size_t max_pending = 128;     // parsed-but-undispatched (shed beyond)
  std::size_t max_frame_bytes = 1 << 20;
  double idle_timeout_ms = 30000;    // connected but silent, nothing owed
  double frame_timeout_ms = 10000;   // an open partial frame (slow loris)
  double write_timeout_ms = 10000;   // reply owed but no write progress
  double drain_timeout_ms = 30000;   // hard bound on shutdown drain
  std::uint32_t busy_retry_ms = 25;  // base retry-after hint, scaled by load
};

// Counter snapshot. Gauges (active_sessions/pending/in_flight) are
// point-in-time; everything else is monotone.
struct NetStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_sessions = 0;  // over max_sessions at accept
  std::uint64_t frames = 0;             // complete datalog frames parsed
  std::uint64_t responses = 0;          // diagnosis/error replies rendered
  std::uint64_t busy_shed = 0;          // explicit busy replies, all causes
  std::uint64_t malformed = 0;          // datalogs the reader rejected
  std::uint64_t oversize = 0;           // frame-size cap closures
  std::uint64_t idle_reaped = 0;
  std::uint64_t frame_reaped = 0;       // slow-loris partial frames
  std::uint64_t write_reaped = 0;       // write-progress timeouts
  std::uint64_t midframe_disconnects = 0;
  std::uint64_t io_errors = 0;          // hard read/write failures
  std::uint64_t active_sessions = 0;
  std::uint64_t pending = 0;
  std::uint64_t in_flight = 0;
};

std::string format_net_stats(const NetStats& s);

class NetServer {
 public:
  // How the loop reaches the serving layer. service() resolves the
  // current dispatch target (may throw — the thrown message becomes the
  // reply); handle_admin() services `!verb` lines, returning false when
  // admin is unsupported (single-store mode). Both are called only from
  // the loop thread.
  struct Backend {
    virtual ~Backend() = default;
    virtual DiagnosisService& service() = 0;
    virtual bool handle_admin(const std::vector<std::string>& tokens,
                              std::ostream& out) = 0;
    // Services one complete `session ...` frame (see session/service.h),
    // writing the full reply including its closing `done`. Executed
    // inline on the loop thread, in request order, exactly like admin
    // verbs — session state is loop-thread-owned and needs no locking.
    // Returns false when session verbs are unsupported.
    virtual bool handle_session(const std::string& frame_text,
                                std::ostream& out) {
      (void)frame_text;
      (void)out;
      return false;
    }
    // The store version currently served (repository mode); 0 when the
    // backend has no versioning (single-store mode). Reported by the
    // `!health` verb so fleet supervisors can verify epoch consistency.
    virtual std::uint64_t store_version() { return 0; }
  };

  NetServer(Backend& backend, const NetServerOptions& options);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds and listens on the configured endpoints; throws
  // std::runtime_error on failure. Call before run().
  void start();
  // The actually-bound TCP port (after start(); kernel-assigned when the
  // option was 0), or -1 without a TCP listener.
  int tcp_port() const { return bound_tcp_port_; }

  // Runs the event loop until request_stop(), then drains and returns.
  void run();

  // Async-signal-safe stop request; run() drains and returns.
  void request_stop();

  NetStats stats() const;

 private:
  struct Session;
  struct Pending;

  void accept_ready(int listener);
  void read_ready(Session& s);
  void handle_frame(Session& s, Frame frame);
  void pump_admission();
  void resolve_fronts(Session& s);
  void flush_writes(Session& s);
  void enforce_timeouts(Session& s, double now_ms);
  void force_close(Session& s, bool count_midframe);
  std::uint32_t retry_hint() const;
  double now_ms() const;
  NetStats snapshot_live() const;

  Backend& backend_;
  NetServerOptions options_;
  int tcp_listener_ = -1;
  int unix_listener_ = -1;
  int bound_tcp_port_ = -1;
  fdio::WakePipe wake_;
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;  // loop-thread-only; reported by `!health`

  std::uint64_t next_session_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::deque<Pending> pending_;      // admission queue, front = oldest
  std::size_t inflight_ = 0;         // dispatched into the service
  // Futures of force-closed sessions: still occupy service capacity, so
  // they are polled until resolution to keep inflight_ honest.
  std::vector<std::future<ServiceResponse>> orphans_;

  // The loop thread owns live_ lock-free; once per iteration it publishes
  // a copy into stats_ under the mutex, which is all stats() ever reads —
  // so cross-thread observation is at most one loop tick stale and
  // TSan-clean.
  NetStats live_;
  mutable std::mutex stats_mutex_;
  NetStats stats_;
};

}  // namespace sddict::net
