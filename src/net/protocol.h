// The sddict_serve line protocol, factored out of the binary so the
// serial stdio/Unix-socket session and the event-loop TCP front end
// (net/server.h) render byte-identical responses from shared code — the
// property the soak harness diffs for.
//
// Response grammar (one reply per request, always closed by `done`):
//
//   diagnosis <outcome> best=... completed=<0|1> stop=<reason> [dropped=N]
//   candidate <rank> fault=<id> mismatches=<n>          (0..max_results)
//   cover fault=<id> ... uncovered=<n>                  (unmodeled only)
//   timing latency_ms=<x> cache_hit=<0|1>               (volatile line)
//   done
//
//   error <message>
//   done
//
//   busy retry_after_ms=<n>        <- load shed: the server explicitly
//   done                              refused this request; retry after
//                                     the suggested delay (client.h backs
//                                     off exponentially from it)
//
// FrameReader is the incremental request framer for nonblocking reads:
// bytes in, complete frames out, with the same framing rules the blocking
// session loop uses (a `!verb` or bare `stats`/`quit` line outside a
// datalog is a command; everything else accumulates until a well-formed
// `end` line closes the datalog) plus a hard frame-size cap so one
// endless line cannot grow a session buffer without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "serve/diagnosis_service.h"

namespace sddict::net {

// Renders a resolved response exactly as serve_session always printed it.
// `dropped` is the count of recovery-mode datalog records set aside.
void write_response(std::ostream& out, const ServiceResponse& resp,
                    std::size_t dropped);
void write_error(std::ostream& out, const std::string& what);
void write_busy(std::ostream& out, std::uint32_t retry_after_ms);

// True when a complete datalog-type frame is a session verb (first line
// leads with the token `session`). Session verbs deliberately ride the
// datalog frame type — a block closed by a bare `end` line — so they
// traverse the framer, the event loop and the fleet proxy unchanged;
// this is the one routing test the front ends share.
bool is_session_frame(const std::string& frame_text);

struct Frame {
  enum class Type {
    kCommand,   // a bare command or !admin line; `tokens` holds it split
    kDatalog,   // a complete datalog block (incl. its `end` line) in `text`
    kOversize,  // frame-size cap exceeded; the session must be closed
  };
  Type type = Type::kDatalog;
  std::vector<std::string> tokens;
  std::string text;
};

class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  // Appends raw bytes; complete frames become available via next().
  void feed(const char* data, std::size_t n);

  // Pops the next complete frame; false when none is ready.
  bool next(Frame* out);

  // Partially-accumulated request data is pending (an open datalog block
  // or an unterminated line) — what a mid-frame disconnect abandons and
  // the slow-loris timeout watches.
  bool mid_frame() const { return !buffer_.empty() || !block_.empty(); }

 private:
  void take_line(std::string line);

  std::size_t max_frame_bytes_;
  std::string buffer_;  // bytes since the last '\n'
  std::string block_;   // open datalog block
  bool in_block_ = false;
  bool oversized_ = false;
  std::deque<Frame> ready_;
};

}  // namespace sddict::net
