#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "diag/testerlog.h"
#include "util/failpoint.h"

namespace sddict::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

std::string format_net_stats(const NetStats& s) {
  std::ostringstream out;
  out << "accepted=" << s.accepted
      << " rejected_sessions=" << s.rejected_sessions << " frames=" << s.frames
      << " responses=" << s.responses << " busy_shed=" << s.busy_shed
      << " malformed=" << s.malformed << " oversize=" << s.oversize
      << " idle_reaped=" << s.idle_reaped << " frame_reaped=" << s.frame_reaped
      << " write_reaped=" << s.write_reaped
      << " midframe_disconnects=" << s.midframe_disconnects
      << " io_errors=" << s.io_errors << " sessions=" << s.active_sessions
      << " pending=" << s.pending << " net_in_flight=" << s.in_flight;
  return out.str();
}

// One reply slot. Replies leave a session strictly in request order: only
// the front slot of the deque may render, so a slow diagnosis never lets
// a later reply (even an instant busy or admin one) overtake it.
struct SessionSlot {
  enum class State {
    kQueued,    // parsed, waiting for service capacity (in pending_)
    kInFlight,  // submitted; future pending
    kText,      // rendered reply text, ready to write
    kAdmin,     // admin/stats command, executed when it reaches the front
    kSession,   // `session` verb frame, executed when it reaches the front
    kQuit,      // quit command: start closing when it reaches the front
  };
  State state = State::kText;
  std::uint64_t seq = 0;
  std::vector<Observed> observed;  // kQueued; moved out at dispatch
  std::size_t dropped = 0;
  std::future<ServiceResponse> future;  // kInFlight
  std::string text;                     // kText
  std::vector<std::string> tokens;      // kAdmin
};

struct NetServer::Session {
  std::uint64_t id = 0;
  int fd = -1;
  FrameReader reader;
  std::string outbuf;
  std::deque<SessionSlot> slots;
  std::uint64_t next_slot_seq = 1;
  double last_read_ms = 0;
  double last_write_progress_ms = 0;
  double frame_open_ms = -1;  // -1 = no partial frame open
  bool closing = false;       // stop reading; drain slots, flush, close
  bool dead = false;          // fd closed; erase at cleanup

  explicit Session(std::size_t max_frame_bytes) : reader(max_frame_bytes) {}

  std::size_t unresolved() const {
    std::size_t n = 0;
    for (const SessionSlot& s : slots)
      if (s.state == SessionSlot::State::kQueued ||
          s.state == SessionSlot::State::kInFlight)
        ++n;
    return n;
  }

  SessionSlot* find_slot(std::uint64_t seq) {
    for (SessionSlot& s : slots)
      if (s.seq == seq) return &s;
    return nullptr;
  }
};

struct NetServer::Pending {
  std::uint64_t session_id = 0;
  std::uint64_t slot_seq = 0;
};

NetServer::NetServer(Backend& backend, const NetServerOptions& options)
    : backend_(backend), options_(options) {}

NetServer::~NetServer() {
  for (auto& [id, s] : sessions_)
    if (!s->dead && s->fd >= 0) ::close(s->fd);
  if (tcp_listener_ >= 0) ::close(tcp_listener_);
  if (unix_listener_ >= 0) ::close(unix_listener_);
  if (!options_.unix_path.empty() && unix_listener_ >= 0)
    ::unlink(options_.unix_path.c_str());
}

void NetServer::start() {
  // A peer that disappears mid-write must surface as EPIPE from write(),
  // not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  if (options_.tcp_port >= 0) {
    tcp_listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listener_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.bind_host.c_str(), &addr.sin_addr) != 1)
      throw std::runtime_error("bad bind host '" + options_.bind_host + "'");
    if (::bind(tcp_listener_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("bind tcp port " + std::to_string(options_.tcp_port));
    if (::listen(tcp_listener_, options_.backlog) != 0) throw_errno("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(tcp_listener_, reinterpret_cast<sockaddr*>(&addr),
                      &len) != 0)
      throw_errno("getsockname");
    bound_tcp_port_ = ntohs(addr.sin_port);
    fdio::set_nonblocking(tcp_listener_);
    fdio::set_cloexec(tcp_listener_);
  }
  if (!options_.unix_path.empty()) {
    const std::string& path = options_.unix_path;
    unix_listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_listener_ < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof addr.sun_path)
      throw std::runtime_error("socket path too long: " + path);
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
    // Reclaim a stale socket file from a dead server, but refuse to
    // clobber anything that is not a socket.
    struct stat st{};
    if (::lstat(path.c_str(), &st) == 0) {
      if (!S_ISSOCK(st.st_mode))
        throw std::runtime_error("refusing to replace non-socket " + path);
      ::unlink(path.c_str());
    }
    if (::bind(unix_listener_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0)
      throw_errno("bind " + path);
    if (::listen(unix_listener_, options_.backlog) != 0) throw_errno("listen");
    fdio::set_nonblocking(unix_listener_);
    fdio::set_cloexec(unix_listener_);
  }
  if (tcp_listener_ < 0 && unix_listener_ < 0)
    throw std::runtime_error("NetServer: no listener configured");
}

void NetServer::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake_.notify();
}

NetStats NetServer::stats() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return stats_;
}

// Loop-thread-only: live counters plus current gauges, for the in-band
// `stats` reply (fresher than the published cross-thread copy).
NetStats NetServer::snapshot_live() const {
  NetStats s = live_;
  s.active_sessions = sessions_.size();
  s.pending = pending_.size();
  s.in_flight = inflight_;
  return s;
}

double NetServer::now_ms() const {
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::milli>(Clock::now() - epoch)
      .count();
}

// Retry-after hint, scaled by how deep the pending queue already is: a
// client shed at 3x pressure is told to stay away ~4x longer than one
// shed at an instantaneous blip, which spreads the retry herd out.
std::uint32_t NetServer::retry_hint() const {
  const double pressure =
      options_.max_pending > 0
          ? static_cast<double>(pending_.size()) /
                static_cast<double>(options_.max_pending)
          : 1.0;
  const double hint = options_.busy_retry_ms * (1.0 + 3.0 * pressure);
  return static_cast<std::uint32_t>(
      std::min(hint, options_.busy_retry_ms * 16.0));
}

void NetServer::accept_ready(int listener) {
  for (;;) {
    fdio::IoResult r;
    const int fd = fdio::accept_retry(listener, &r);
    if (fd < 0) {
      if (r.failed) ++live_.io_errors;
      return;  // would_block: accepted everything ready
    }
    if (sessions_.size() >= options_.max_sessions) {
      // Connection-level admission control: an explicit busy, never a
      // silent RST. Best effort — the peer may already be gone.
      std::ostringstream os;
      write_busy(os, retry_hint());
      const std::string text = os.str();
      (void)fdio::write_some(fd, text.data(), text.size());
      ::close(fd);
      ++live_.rejected_sessions;
      ++live_.busy_shed;
      continue;
    }
    fdio::set_nonblocking(fd);
    fdio::set_cloexec(fd);
    auto s = std::make_unique<Session>(options_.max_frame_bytes);
    s->id = next_session_id_++;
    s->fd = fd;
    s->last_read_ms = s->last_write_progress_ms = now_ms();
    ++live_.accepted;
    sessions_.emplace(s->id, std::move(s));
  }
}

void NetServer::read_ready(Session& s) {
  char buf[4096];
  // Bounded rounds per poll cycle so one firehose client cannot starve
  // the rest of the loop.
  for (int round = 0; round < 8 && !s.closing && !s.dead; ++round) {
    const fdio::IoResult r = fdio::read_some(s.fd, buf, sizeof buf);
    if (r.would_block) break;
    if (r.failed) {
      ++live_.io_errors;
      force_close(s, s.reader.mid_frame());
      return;
    }
    if (r.n == 0) {  // EOF: drain what was accepted, flush, then close
      if (s.reader.mid_frame()) ++live_.midframe_disconnects;
      s.closing = true;
      break;
    }
    s.last_read_ms = now_ms();
    s.reader.feed(buf, static_cast<std::size_t>(r.n));
    Frame frame;
    while (!s.closing && !s.dead && s.reader.next(&frame))
      handle_frame(s, std::move(frame));
  }
  // Slow-loris bookkeeping: note when a partial frame opened, clear when
  // it completed.
  if (!s.dead) {
    if (s.reader.mid_frame()) {
      if (s.frame_open_ms < 0) s.frame_open_ms = now_ms();
    } else {
      s.frame_open_ms = -1;
    }
  }
}

void NetServer::handle_frame(Session& s, Frame frame) {
  switch (frame.type) {
    case Frame::Type::kOversize: {
      ++live_.oversize;
      SessionSlot slot;
      slot.state = SessionSlot::State::kText;
      slot.seq = s.next_slot_seq++;
      std::ostringstream os;
      write_error(os, "frame exceeds " +
                          std::to_string(options_.max_frame_bytes) + " bytes");
      slot.text = os.str();
      s.slots.push_back(std::move(slot));
      s.closing = true;  // the reader is wedged; reply, flush, close
      return;
    }
    case Frame::Type::kCommand: {
      SessionSlot slot;
      slot.seq = s.next_slot_seq++;
      if (frame.tokens.size() == 1 && frame.tokens[0] == "quit") {
        slot.state = SessionSlot::State::kQuit;
      } else {
        slot.state = SessionSlot::State::kAdmin;
        slot.tokens = std::move(frame.tokens);
      }
      s.slots.push_back(std::move(slot));
      return;
    }
    case Frame::Type::kDatalog:
      break;
  }
  ++live_.frames;
  SessionSlot slot;
  slot.seq = s.next_slot_seq++;
  if (is_session_frame(frame.text)) {
    // Session verbs execute inline on the loop thread when they reach the
    // front of the slot queue (the admin-verb discipline), so they stay
    // ordered with the replies around them and the session state needs no
    // locking. The raw frame rides in the slot's text field until then.
    slot.state = SessionSlot::State::kSession;
    slot.text = std::move(frame.text);
    s.slots.push_back(std::move(slot));
    return;
  }
  std::istringstream blockin(frame.text);
  try {
    TesterLog log = read_testerlog(blockin, {.recover = true});
    slot.dropped = log.dropped.size();
    slot.observed = std::move(log.observations);
  } catch (const std::exception& e) {
    // Malformed frame: an error reply on this slot only. The session —
    // and every other session — keeps going.
    ++live_.malformed;
    slot.state = SessionSlot::State::kText;
    std::ostringstream os;
    write_error(os, e.what());
    slot.text = os.str();
    s.slots.push_back(std::move(slot));
    return;
  }
  if (s.unresolved() >= options_.session_inflight) {
    // Per-session admission: one greedy client cannot occupy the whole
    // service; it gets explicit busy replies past its in-flight cap.
    ++live_.busy_shed;
    slot.state = SessionSlot::State::kText;
    std::ostringstream os;
    write_busy(os, retry_hint());
    slot.text = os.str();
    s.slots.push_back(std::move(slot));
    return;
  }
  slot.state = SessionSlot::State::kQueued;
  pending_.push_back(Pending{s.id, slot.seq});
  s.slots.push_back(std::move(slot));
  pump_admission();
}

// Feeds queued requests into the service while capacity lasts, then
// sheds pending-queue overflow oldest-first with explicit busy replies.
void NetServer::pump_admission() {
  while (!pending_.empty() && inflight_ < options_.max_inflight) {
    const Pending p = pending_.front();
    auto it = sessions_.find(p.session_id);
    SessionSlot* slot = it == sessions_.end()
                            ? nullptr
                            : it->second->find_slot(p.slot_seq);
    if (slot == nullptr || slot->state != SessionSlot::State::kQueued) {
      pending_.pop_front();  // session closed or slot already shed
      continue;
    }
    std::optional<std::future<ServiceResponse>> fut;
    try {
      if (failpoint::triggered("net.submit.full"))
        fut = std::nullopt;  // injected service saturation
      else
        // Copied, not moved: a full service queue keeps the request
        // intact for the next pump.
        fut = backend_.service().try_submit(slot->observed);
    } catch (const std::exception& e) {
      // No service to dispatch to (e.g. repo mode without a circuit).
      slot->state = SessionSlot::State::kText;
      std::ostringstream os;
      write_error(os, e.what());
      slot->text = os.str();
      pending_.pop_front();
      continue;
    }
    if (!fut.has_value()) {
      // Service queue full: the request stays pending until the
      // dispatcher frees capacity; overflow past max_pending is shed
      // below.
      break;
    }
    slot->state = SessionSlot::State::kInFlight;
    slot->observed.clear();
    slot->observed.shrink_to_fit();
    slot->future = std::move(*fut);
    ++inflight_;
    pending_.pop_front();
  }
  while (pending_.size() > options_.max_pending) {
    // Overload: shed OLDEST first. The front of the queue has waited
    // longest — its deadline expires soonest and its client is the most
    // likely to have given up — so shedding it (with an explicit busy)
    // preserves the requests that still have time to be useful.
    const Pending p = pending_.front();
    pending_.pop_front();
    auto it = sessions_.find(p.session_id);
    if (it == sessions_.end()) continue;
    SessionSlot* slot = it->second->find_slot(p.slot_seq);
    if (slot == nullptr || slot->state != SessionSlot::State::kQueued)
      continue;
    ++live_.busy_shed;
    slot->state = SessionSlot::State::kText;
    std::ostringstream os;
    write_busy(os, retry_hint());
    slot->text = os.str();
  }
}

// Renders every resolvable reply at the front of the slot queue into the
// session's write buffer, preserving request order.
void NetServer::resolve_fronts(Session& s) {
  while (!s.slots.empty() && !s.dead) {
    SessionSlot& front = s.slots.front();
    switch (front.state) {
      case SessionSlot::State::kQueued:
        return;  // waiting for admission
      case SessionSlot::State::kInFlight: {
        if (front.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
          return;
        std::ostringstream os;
        try {
          write_response(os, front.future.get(), front.dropped);
        } catch (const std::exception& e) {
          write_error(os, e.what());
        }
        s.outbuf += os.str();
        --inflight_;
        ++live_.responses;
        s.slots.pop_front();
        break;
      }
      case SessionSlot::State::kText:
        s.outbuf += front.text;
        ++live_.responses;
        s.slots.pop_front();
        break;
      case SessionSlot::State::kAdmin: {
        std::ostringstream os;
        try {
          if (front.tokens.size() == 1 && front.tokens[0] == "stats") {
            os << "stats " << format_service_stats(backend_.service().stats())
               << " " << format_net_stats(snapshot_live()) << "\n";
          } else if (front.tokens.size() == 1 && front.tokens[0] == "!health") {
            // Machine-readable one-liner (no `done`): what a supervisor or
            // proxy health probe needs to decide rotation membership and
            // drain completion. in_flight counts every accepted request not
            // yet replied to (net pending + dispatched), so zero here means
            // this backend owes nobody anything.
            const ServiceStats svc = backend_.service().stats();
            os << "health state=" << (draining_ ? "draining" : "ok")
               << " queue_depth=" << svc.queue_depth
               << " in_flight=" << (pending_.size() + inflight_)
               << " epoch=" << svc.swaps
               << " version=" << backend_.store_version() << "\n";
          } else if (!backend_.handle_admin(front.tokens, os)) {
            write_error(os, "admin verbs need repository mode (--repo)");
          }
        } catch (const std::exception& e) {
          write_error(os, e.what());
        }
        s.outbuf += os.str();
        ++live_.responses;
        s.slots.pop_front();
        break;
      }
      case SessionSlot::State::kSession: {
        std::ostringstream os;
        try {
          if (!backend_.handle_session(front.text, os))
            write_error(os, "session verbs not supported by this server");
        } catch (const std::exception& e) {
          write_error(os, e.what());
        }
        s.outbuf += os.str();
        ++live_.responses;
        s.slots.pop_front();
        break;
      }
      case SessionSlot::State::kQuit:
        s.closing = true;
        s.slots.pop_front();
        break;
    }
  }
}

void NetServer::flush_writes(Session& s) {
  while (!s.outbuf.empty() && !s.dead) {
    const fdio::IoResult r =
        fdio::write_some(s.fd, s.outbuf.data(), s.outbuf.size());
    if (r.would_block) return;
    if (r.failed) {
      ++live_.io_errors;
      force_close(s, s.reader.mid_frame());
      return;
    }
    if (r.n > 0) {
      s.outbuf.erase(0, static_cast<std::size_t>(r.n));
      s.last_write_progress_ms = now_ms();
    }
  }
}

void NetServer::enforce_timeouts(Session& s, double now) {
  if (s.dead) return;
  if (!s.outbuf.empty() &&
      now - s.last_write_progress_ms > options_.write_timeout_ms) {
    ++live_.write_reaped;
    force_close(s, s.reader.mid_frame());
    return;
  }
  if (s.frame_open_ms >= 0 && now - s.frame_open_ms > options_.frame_timeout_ms) {
    // Slow loris: a frame has been dribbling in for too long.
    ++live_.frame_reaped;
    force_close(s, /*count_midframe=*/true);
    return;
  }
  if (!s.closing && s.outbuf.empty() && s.slots.empty() &&
      !s.reader.mid_frame() &&
      now - s.last_read_ms > options_.idle_timeout_ms) {
    ++live_.idle_reaped;
    force_close(s, /*count_midframe=*/false);
  }
}

// Immediate teardown (timeout, I/O failure). In-flight futures still hold
// service capacity, so they move to the orphan list and keep being polled
// until resolution; queued slots become dead entries the admission pump
// skips.
void NetServer::force_close(Session& s, bool count_midframe) {
  if (s.dead) return;
  if (count_midframe) ++live_.midframe_disconnects;
  for (SessionSlot& slot : s.slots)
    if (slot.state == SessionSlot::State::kInFlight)
      orphans_.push_back(std::move(slot.future));
  s.slots.clear();
  s.outbuf.clear();
  ::close(s.fd);
  s.fd = -1;
  s.dead = true;
}

void NetServer::run() {
  draining_ = false;
  double drain_start = 0;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_session;  // session id per pollfd slot, 0 = none
  for (;;) {
    fds.clear();
    fd_session.clear();
    fds.push_back(pollfd{wake_.read_fd(), POLLIN, 0});
    fd_session.push_back(0);
    std::size_t tcp_idx = 0, unix_idx = 0;
    if (!draining_) {
      if (tcp_listener_ >= 0) {
        tcp_idx = fds.size();
        fds.push_back(pollfd{tcp_listener_, POLLIN, 0});
        fd_session.push_back(0);
      }
      if (unix_listener_ >= 0) {
        unix_idx = fds.size();
        fds.push_back(pollfd{unix_listener_, POLLIN, 0});
        fd_session.push_back(0);
      }
    }
    bool futures_pending = !orphans_.empty() || !pending_.empty();
    for (auto& [id, sp] : sessions_) {
      Session& s = *sp;
      if (s.dead) continue;
      short events = 0;
      if (!s.closing && !draining_) events |= POLLIN;
      if (!s.outbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{s.fd, events, 0});
      fd_session.push_back(id);
      for (const SessionSlot& slot : s.slots)
        if (slot.state == SessionSlot::State::kInFlight) {
          futures_pending = true;
          break;
        }
    }
    // Futures resolve on the service's dispatcher thread with no fd to
    // poll, so while any are outstanding the loop ticks fast; otherwise
    // it sleeps until the nearest timeout could possibly fire.
    const int timeout = futures_pending ? 2 : 100;
    const int nready = ::poll(fds.data(), fds.size(), timeout);
    if (nready < 0 && errno != EINTR) ++live_.io_errors;
    wake_.drain();

    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_start = now_ms();
      if (tcp_listener_ >= 0) ::close(tcp_listener_);
      if (unix_listener_ >= 0) {
        ::close(unix_listener_);
        if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
      }
      tcp_listener_ = -1;
      unix_listener_ = -1;
    }

    if (!draining_ && nready > 0) {
      if (tcp_idx != 0 && (fds[tcp_idx].revents & POLLIN))
        accept_ready(fds[tcp_idx].fd);
      if (unix_idx != 0 && (fds[unix_idx].revents & POLLIN))
        accept_ready(fds[unix_idx].fd);
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fd_session[i] == 0) continue;
      auto it = sessions_.find(fd_session[i]);
      if (it == sessions_.end() || it->second->dead) continue;
      Session& s = *it->second;
      if (fds[i].revents & (POLLERR | POLLNVAL)) {
        ++live_.io_errors;
        force_close(s, s.reader.mid_frame());
        continue;
      }
      if (!draining_ && (fds[i].revents & (POLLIN | POLLHUP))) read_ready(s);
    }

    pump_admission();

    // Orphaned futures (their session died) still occupy service slots.
    for (std::size_t i = 0; i < orphans_.size();) {
      if (orphans_[i].wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        try {
          orphans_[i].get();
        } catch (...) {
        }
        --inflight_;
        orphans_.erase(orphans_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    const double now = now_ms();
    for (auto& [id, sp] : sessions_) {
      if (sp->dead) continue;
      resolve_fronts(*sp);
      flush_writes(*sp);
      enforce_timeouts(*sp, now);
      if (!sp->dead && sp->closing && sp->slots.empty() &&
          sp->outbuf.empty()) {
        ::close(sp->fd);
        sp->fd = -1;
        sp->dead = true;
      }
    }
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second->dead) {
        const std::uint64_t id = it->first;
        pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                      [id](const Pending& p) {
                                        return p.session_id == id;
                                      }),
                       pending_.end());
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }

    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      stats_ = live_;
      stats_.active_sessions = sessions_.size();
      stats_.pending = pending_.size();
      stats_.in_flight = inflight_;
    }

    if (draining_) {
      bool work_left = !pending_.empty() || inflight_ > 0;
      for (auto& [id, sp] : sessions_)
        if (!sp->dead && (!sp->slots.empty() || !sp->outbuf.empty()))
          work_left = true;
      if (!work_left || now - drain_start > options_.drain_timeout_ms) {
        for (auto& [id, sp] : sessions_)
          if (!sp->dead) {
            ::close(sp->fd);
            sp->fd = -1;
            sp->dead = true;
          }
        sessions_.clear();
        std::lock_guard<std::mutex> lk(stats_mutex_);
        stats_ = live_;
        stats_.active_sessions = 0;
        stats_.pending = pending_.size();
        stats_.in_flight = inflight_;
        return;
      }
    }
  }
}

}  // namespace sddict::net
