// Noise-vs-rank sweep of the diagnosis engine: inject modeled single-fault
// defects, corrupt the tester observation through the deterministic noise
// channel (seeded response-id flips + record dropouts), and diagnose with
// every dictionary type through diag/engine.h. Reports the mean rank of the
// true fault (1 = top candidate; lower is better) per noise rate, i.e. how
// gracefully each dictionary's resolution degrades with tester data quality.
//
//   $ ./bench_noise [--circuit=s298] [--defects=1000] [--rates=0.5,1,2,5]
//                   [--tests=detect|diag] [--tolerance=2] [--calls1=10]
//                   [--seed=1]
//
// The noise mix models a real datalog: at rate r% each test independently
// loses its record with probability r/100 (the dominant tester failure)
// and, when kept, has its response corrupted into another modeled response
// with probability r/400 (outright value corruption is the rarer event).
// The default test set is a compact detection set — the production-tester
// scenario where the dictionaries' resolution actually differs; a
// diagnosis-optimized set (--tests=diag) leaves little resolution for any
// dictionary to add.
//
// Built-in self-check: at every rate <= 2% the same/different dictionary's
// mean true-fault rank must beat (be strictly below) pass/fail's — the
// diagnostic-resolution claim the paper makes, preserved under noise.
// Exits non-zero when the check fails.
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/multibaseline.h"
#include "core/procedure2.h"
#include "diag/engine.h"
#include "diag/observe.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "tgen/diagset.h"
#include "tgen/ndetect.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"

#include "../tests/faultinject.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_noise [--circuit=s298] [--defects=N]\n"
               "  [--rates=0.5,1,2,5] (percent) [--tests=detect|diag]\n"
               "  [--tolerance=N] [--calls1=N] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"circuit", "defects", "rates", "tests", "tolerance", "calls1", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::string circuit;
  std::string ttype;
  std::size_t num_defects = 0;
  std::vector<double> rates;
  EngineOptions eopt;
  std::size_t calls1 = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuit = args.get("circuit", "s298");
    if (!is_known_benchmark(circuit))
      throw std::invalid_argument("flag --circuit: unknown benchmark '" +
                                  circuit + "'");
    num_defects = args.get_int("defects", 1000, 1, 1 << 20);
    for (const auto& r : args.get_list("rates")) {
      std::size_t pos = 0;
      double v = -1;
      try {
        v = std::stod(r, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != r.size() || v < 0 || v > 100)
        throw std::invalid_argument(
            "flag --rates: '" + r + "' is not a percentage in [0, 100]");
      rates.push_back(v);
    }
    if (rates.empty()) rates = {0.5, 1, 2, 5};
    ttype = args.get("tests", "detect");
    if (ttype != "detect" && ttype != "diag")
      throw std::invalid_argument("flag --tests must be detect or diag");
    eopt.tolerance =
        static_cast<std::uint32_t>(args.get_int("tolerance", 2, 0, 1 << 20));
    calls1 = args.get_int("calls1", 10, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  Netlist nl = load_benchmark(circuit);
  if (nl.has_dffs()) nl = full_scan(nl);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests;
  if (ttype == "detect") {
    tests = generate_detect(nl, faults, seed).tests;
  } else {
    DiagSetOptions dopts;
    dopts.seed = seed;
    tests = generate_diagnostic(nl, faults, dopts).tests;
  }
  ResponseMatrixOptions rmopts;
  rmopts.store_diff_outputs = true;  // first-fail needs the output lists
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests, rmopts);

  const auto full = FullDictionary::build(rm);
  const auto pf = PassFailDictionary::build(rm);
  BaselineSelectionConfig cfg;
  cfg.calls1 = calls1;
  cfg.seed = seed;
  cfg.target_indistinguished = full.indistinguished_pairs();
  const auto p1 = run_procedure1(rm, cfg);
  Procedure2Config p2cfg;
  p2cfg.target_indistinguished = full.indistinguished_pairs();
  const auto p2 = run_procedure2(rm, p1.baselines, p2cfg);
  const auto sd = SameDifferentDictionary::build(rm, p2.baselines);
  const auto mbsel = run_multi_baseline(rm, 2, cfg);
  const auto mb = MultiBaselineDictionary::build(rm, mbsel.baselines);
  const auto ff = FirstFailDictionary::build(rm);

  std::printf("Noise sweep: %s, %zu faults, %zu tests, %zu defects/rate, "
              "tolerance %u\n\n",
              circuit.c_str(), faults.size(), tests.size(), num_defects,
              eopt.tolerance);
  enum { kFull = 0, kPf, kSd, kMb, kFf, kDicts };
  const char* labels[kDicts] = {"full", "pass/fail", "same/diff", "multi-bl-2",
                                "first-fail"};
  std::printf("%-9s", "noise %");
  for (const char* l : labels) std::printf(" %12s", l);
  std::printf("   (mean true-fault rank)\n");

  eopt.max_results = faults.size();  // rank every fault
  bool check_ok = true;
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    const double rate = rates[ri];
    double sum_rank[kDicts] = {0};
    Rng defect_rng(seed + 99);
    for (std::size_t d = 0; d < num_defects; ++d) {
      const auto truth = static_cast<FaultId>(defect_rng.below(faults.size()));
      const auto ids = observe_defect(nl, tests, rm, {to_injection(faults[truth])});
      testing::NoiseChannel noise;
      noise.flip_rate = rate / 400.0;
      noise.drop_rate = rate / 100.0;
      noise.seed = seed * 1000003 + ri * 8191 + d * 31 + 7;
      const auto observed = testing::apply_noise(ids, rm, noise);

      const EngineDiagnosis diags[kDicts] = {
          diagnose_observed(full, observed, eopt),
          diagnose_observed(pf, observed, eopt),
          diagnose_observed(sd, observed, eopt),
          diagnose_observed(mb, observed, eopt),
          diagnose_observed(ff, rm, observed, eopt),
      };
      for (int i = 0; i < kDicts; ++i) {
        std::size_t rank = true_fault_rank(diags[i].matches, truth);
        if (rank == 0) rank = faults.size();  // absent: worst case
        sum_rank[i] += static_cast<double>(rank);
      }
    }
    std::printf("%-9.2f", rate);
    for (int i = 0; i < kDicts; ++i)
      std::printf(" %12.2f", sum_rank[i] / static_cast<double>(num_defects));
    std::printf("\n");
    if (rate <= 2.0 && sum_rank[kSd] >= sum_rank[kPf]) check_ok = false;
  }

  std::printf("\nself-check (same/diff mean rank < pass/fail at every rate "
              "<= 2%%): %s\n",
              check_ok ? "OK" : "FAILED");
  return check_ok ? 0 : 1;
}
