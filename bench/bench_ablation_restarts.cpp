// Ablation: the CALLS1 restart budget of Procedure 1 (paper Section 3:
// test order affects baseline selection, so Procedure 1 is restarted with
// random orders until CALLS1 consecutive calls bring no improvement).
// Reports resolution and wall time as the restart budget grows.
//
//   $ ./bench_ablation_restarts [--circuits=s298,s400] [--tests=150] [--seed=1]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "dict/full_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/timer.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr, "usage: bench_ablation_restarts [--circuits=s298,...] [--tests=N] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "tests", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s400"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Ablation: Procedure-1 restart budget CALLS1 "
              "(%zu random tests per circuit)\n\n", num_tests);
  std::printf("%-8s %7s %15s %12s %10s\n", "circuit", "CALLS1",
              "indistinguished", "calls used", "time (s)");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(num_tests, rng);
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
    const std::uint64_t floor = FullDictionary::build(rm).indistinguished_pairs();

    for (std::size_t calls1 : {1u, 5u, 10u, 25u, 50u, 100u}) {
      BaselineSelectionConfig cfg;
      cfg.calls1 = calls1;
      cfg.seed = seed;
      cfg.target_indistinguished = floor;
      Timer timer;
      const BaselineSelection sel = run_procedure1(rm, cfg);
      std::printf("%-8s %7zu %15llu %12zu %10.2f\n", name.c_str(), calls1,
                  (unsigned long long)sel.indistinguished_pairs,
                  sel.calls_used, timer.seconds());
    }
    std::printf("%-8s %7s %15llu   (full-dictionary floor)\n\n", name.c_str(),
                "-", (unsigned long long)floor);
  }
  return 0;
}
