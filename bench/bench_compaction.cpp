// Dictionary-aware test-set compaction benchmark (ISSUE 10 acceptance
// harness): per circuit and dictionary kind, builds the packed store over a
// random test set, runs the lossless AD-index-ordered compactor, and
// reports tests/bytes/resolution before and after plus the measured
// ms-per-diagnosis-sweep on both stores.
//
// Built-in self-checks (the run fails instead of printing wrong numbers):
//   * lossless compaction keeps the indistinguished-pair count unchanged
//     and its exact verification pass ran (report.verified),
//   * a sample of clean single-fault sweeps returns the same verdict and
//     best-mismatch count on the compacted store as on the original.
//
//   $ ./bench_compaction [--circuits=s344,s526] [--tests=150] [--seed=1]
//       [--sweeps=64] [--json=BENCH_compaction.json]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bmcirc/registry.h"
#include "compact/compact.h"
#include "core/baseline.h"
#include "diag/engine.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "json_writer.h"
#include "netlist/transform.h"
#include "sim/response.h"
#include "store/signature_store.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compaction [--circuits=s344,s526] [--tests=N]\n"
               "  [--seed=N] [--sweeps=N] [--json=FILE]\n");
  return 1;
}

// Mean milliseconds of one full diagnosis sweep (rank every fault against
// one observation) over `sweeps` distinct clean single-fault observations.
double ms_per_sweep(const SignatureStore& store, const ResponseMatrix& rm,
                    std::size_t sweeps,
                    const std::vector<std::size_t>* kept) {
  const std::size_t n = std::min<std::size_t>(sweeps, rm.num_faults());
  Timer timer;
  for (std::size_t i = 0; i < n; ++i) {
    const FaultId f = static_cast<FaultId>((i * 131) % rm.num_faults());
    std::vector<ResponseId> ids(rm.num_tests());
    for (std::size_t t = 0; t < rm.num_tests(); ++t)
      ids[t] = rm.response(f, t);
    std::vector<Observed> obs = qualify(ids);
    if (kept) obs = project_observations(obs, *kept);
    (void)diagnose_observed(store, obs);
  }
  return timer.seconds() * 1000.0 / static_cast<double>(n);
}

std::vector<std::size_t> kept_of(const SignatureStore& store,
                                 const CompactionReport& report) {
  std::vector<std::size_t> kept;
  std::size_t d = 0;
  for (std::size_t t = 0; t < store.num_tests(); ++t) {
    if (d < report.dropped.size() && report.dropped[d] == t)
      ++d;
    else
      kept.push_back(t);
  }
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown =
      args.unknown_flags({"circuits", "tests", "seed", "sweeps", "json"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::size_t sweeps = 0;
  std::uint64_t seed = 0;
  std::string json_path;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s344", "s526"};
    num_tests = args.get_int("tests", 150, 2, 1 << 20);
    sweeps = args.get_int("sweeps", 64, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
    json_path = args.get("json");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Lossless store compaction (%zu random tests, %zu sweeps)\n\n",
              num_tests, sweeps);
  std::printf("%-8s %-14s %5s %5s %9s %9s %9s %9s %8s %8s\n", "circuit",
              "kind", "k", "k'", "bytes", "bytes'", "ms/sweep", "ms/swp'",
              "pairs", "pairs'");

  std::vector<bench::JsonRecord> records;
  const auto record = [&](const std::string& circuit,
                          const std::string& metric, double value) {
    records.push_back({"bench_compaction", circuit, 0, metric, value});
  };

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(num_tests, rng);
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    BaselineSelectionConfig bcfg;
    bcfg.calls1 = 10;
    bcfg.seed = seed;
    bcfg.target_indistinguished =
        FullDictionary::build(rm).indistinguished_pairs();
    const BaselineSelection p1 = run_procedure1(rm, bcfg);

    struct Row {
      std::string kind;
      SignatureStore store;
    };
    std::vector<Row> rows;
    rows.push_back({"pass/fail",
                    SignatureStore::build(PassFailDictionary::build(rm))});
    rows.push_back({"same/different",
                    SignatureStore::build(
                        SameDifferentDictionary::build(rm, p1.baselines))});
    rows.push_back({"full", SignatureStore::build(FullDictionary::build(rm))});

    for (const Row& row : rows) {
      const CompactionResult cr = compact_store(row.store);
      const CompactionReport& rep = cr.report;
      // Self-check 1: lossless means zero resolution delta, and the
      // planner's exact re-partition verification must have run.
      if (rep.pairs_after != rep.pairs_before || !rep.verified) {
        std::fprintf(stderr,
                     "FAIL %s %s: lossless compaction moved resolution "
                     "(%llu -> %llu, verified=%d)\n",
                     name.c_str(), row.kind.c_str(),
                     (unsigned long long)rep.pairs_before,
                     (unsigned long long)rep.pairs_after, (int)rep.verified);
        return 1;
      }
      const std::vector<std::size_t> kept = kept_of(row.store, rep);
      // Self-check 2: sampled clean sweeps agree across the compaction.
      for (FaultId f = 0; f < rm.num_faults();
           f += std::max<std::size_t>(1, rm.num_faults() / 8)) {
        std::vector<ResponseId> ids(rm.num_tests());
        for (std::size_t t = 0; t < rm.num_tests(); ++t)
          ids[t] = rm.response(f, t);
        const EngineDiagnosis a = diagnose_observed(row.store, qualify(ids));
        const EngineDiagnosis b = diagnose_observed(
            cr.store, project_observations(qualify(ids), kept));
        if (a.outcome != b.outcome || a.best_mismatches != b.best_mismatches) {
          std::fprintf(stderr,
                       "FAIL %s %s: diagnosis diverged on fault %u\n",
                       name.c_str(), row.kind.c_str(), (unsigned)f);
          return 1;
        }
      }
      const double ms_before = ms_per_sweep(row.store, rm, sweeps, nullptr);
      const double ms_after = ms_per_sweep(cr.store, rm, sweeps, &kept);
      std::printf("%-8s %-14s %5zu %5zu %9zu %9zu %9.4f %9.4f %8llu %8llu\n",
                  name.c_str(), row.kind.c_str(), rep.tests_before,
                  rep.tests_after, rep.bytes_before, rep.bytes_after,
                  ms_before, ms_after,
                  (unsigned long long)rep.pairs_before,
                  (unsigned long long)rep.pairs_after);
      const std::string k = row.kind == "pass/fail"       ? "pf"
                            : row.kind == "same/different" ? "sd"
                                                           : "full";
      record(name, "tests_before_" + k, (double)rep.tests_before);
      record(name, "tests_after_" + k, (double)rep.tests_after);
      record(name, "store_bytes_before_" + k, (double)rep.bytes_before);
      record(name, "store_bytes_after_" + k, (double)rep.bytes_after);
      record(name, "ms_per_sweep_before_" + k, ms_before);
      record(name, "ms_per_sweep_after_" + k, ms_after);
      record(name, "resolution_before_" + k, (double)rep.pairs_before);
      record(name, "resolution_after_" + k, (double)rep.pairs_after);
    }
    std::printf("\n");
  }
  std::printf("lossless compaction: every kept store resolves exactly the "
              "pairs the original did (verified by exact re-partition).\n");

  if (!json_path.empty()) {
    bench::write_bench_json(json_path, records);
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}
