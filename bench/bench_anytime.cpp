// Anytime behavior of budgeted Procedure 1: solution quality
// (indistinguished fault pairs) as a function of the wall-clock deadline,
// on registry circuits. Each row records the deadline, the restarts
// consumed before it expired, the resulting pair count, and the stop
// reason.
//
// Every budgeted run is also checked against the anytime guarantee: a
// deadline-expired run must return exactly the incumbent an unbudgeted run
// holds after the same restart index. The check re-runs Procedure 1 with
// budget.max_restarts = calls_used (and no deadline) at one thread and at
// the bench's thread count and requires bit-identical baselines, pair
// counts and calls_used; the bench exits 1 on any mismatch.
//
//   $ ./bench_anytime                                    # s953, s1423
//   $ ./bench_anytime --circuits=s5378 --deadlines=0.1,0.5,2 --threads=8
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"

using namespace sddict;

namespace {

bool same_selection(const BaselineSelection& a, const BaselineSelection& b) {
  return a.baselines == b.baselines &&
         a.distinguished_pairs == b.distinguished_pairs &&
         a.indistinguished_pairs == b.indistinguished_pairs &&
         a.calls_used == b.calls_used;
}

double parse_seconds(const std::string& value) {
  double out = 0;
  std::size_t consumed = 0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;
  }
  if (consumed != value.size() || out <= 0)
    throw std::invalid_argument("bad deadline '" + value +
                                "' in --deadlines (want seconds > 0)");
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_anytime [--circuits=s953,s1423]\n"
               "  [--deadlines=0.02,0.05,0.1,0.25,0.5] [--tests=N] [--seed=N]\n"
               "  [--calls1=N] [--lower=N] [--threads=N] [--verbose=true]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown =
      args.unknown_flags({"circuits", "deadlines", "tests", "seed", "calls1",
                          "lower", "threads", "verbose"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::vector<std::string> circuits;
  std::vector<double> deadlines;
  std::size_t num_tests = 0, threads = 0;
  BaselineSelectionConfig bcfg;
  try {
    set_log_level(args.get_bool("verbose", false) ? LogLevel::kDebug
                                                  : LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s953", "s1423"};
    for (const std::string& d : args.get_list("deadlines"))
      deadlines.push_back(parse_seconds(d));
    if (deadlines.empty()) deadlines = {0.02, 0.05, 0.1, 0.25, 0.5};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    threads = args.get_int("threads", 0, 0, 4096);
    bcfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, 0));
    // A large CALLS1 keeps the restart loop running until the deadline
    // cuts it, which is the regime this bench studies.
    bcfg.calls1 = args.get_int("calls1", 1000, 1, 1 << 20);
    bcfg.lower = args.get_int("lower", 10, 1, 1 << 20);
    bcfg.num_threads = threads;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Anytime Procedure 1: quality vs. deadline "
              "(%zu random tests, CALLS1=%zu)\n\n",
              num_tests, bcfg.calls1);
  std::printf("%-8s %10s %8s %16s %13s %10s\n", "circuit", "deadline",
              "calls", "indistinguished", "stop", "replayable");

  bool all_ok = true;
  for (const auto& name : circuits) {
    if (!is_known_benchmark(name)) {
      std::fprintf(stderr, "skipping unknown circuit '%s'\n", name.c_str());
      continue;
    }
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(bcfg.seed);
    tests.add_random(num_tests, rng);
    const ResponseMatrix rm =
        build_response_matrix(nl, faults, tests, {.num_threads = threads});

    for (double d : deadlines) {
      BaselineSelectionConfig budgeted = bcfg;
      budgeted.budget.max_seconds = d;
      const BaselineSelection sel = run_procedure1(rm, budgeted);

      // Anytime-consistency replay. calls_used == 0 means even restart 0
      // was skipped (result is the pass/fail floor) — nothing to replay.
      bool replayable = true;
      if (sel.calls_used > 0) {
        BaselineSelectionConfig replay = bcfg;
        replay.budget.max_restarts = sel.calls_used;
        for (std::size_t t : {std::size_t{1}, threads}) {
          replay.num_threads = t;
          if (!same_selection(sel, run_procedure1(rm, replay)))
            replayable = false;
        }
      }
      all_ok = all_ok && replayable;

      std::printf("%-8s %9.3fs %8zu %16llu %13s %10s\n", name.c_str(), d,
                  sel.calls_used, (unsigned long long)sel.indistinguished_pairs,
                  stop_reason_name(sel.stop_reason),
                  replayable ? "yes" : "NO");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: a budgeted run differed from its unbudgeted replay\n");
    return 1;
  }
  return 0;
}
