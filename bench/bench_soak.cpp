// Multi-process soak/load generator for the networked serving tier
// (ISSUE 7 acceptance harness).
//
// What one run proves:
//
//   1. Byte identity under concurrency, overload and injected faults —
//      the parent first drives every planned request through the SAME
//      server binary in single-connection stdio mode (threads=1, batch=1,
//      cache off: the serial reference), then starts it as a TCP server
//      under deliberately tiny admission limits with syscall failpoints
//      armed (short reads, spurious EINTR, hard resets — via
//      SDDICT_FAILPOINTS) and hammers it with >= 8 forked client
//      processes. Every non-busy ranking a worker records must match the
//      stdio reference byte for byte (the volatile timing line is the
//      only permitted difference).
//   2. Every request is answered — each worker accounts for every request
//      it sent: a full diagnosis, an explicit `busy retry_after_ms=N`
//      reply, or a hard failure (which fails the run). Hangs surface as
//      client I/O timeouts, not as a wedged harness.
//   3. Overload sheds explicitly — worker 0 pipelines its whole request
//      stream in one burst against a small per-session in-flight cap, so
//      the server MUST shed (the parent asserts busy_shed > 0 in the
//      final stats probe), and sheds arrive in request order behind
//      earlier replies.
//   4. Chaos does not leak — dedicated chaos workers feed the server
//      garbage frames, mid-frame disconnects, slow-loris dribbles and
//      stats probes the whole time; the run still has to satisfy 1-3.
//   5. Clean drain — the parent SIGTERMs the server and requires exit 0
//      (the event loop drains and returns; the `drained:` stderr line is
//      echoed into the report).
//
//   $ ./bench_soak --server=./examples/sddict_serve [--workers=8]
//       [--chaos=3] [--requests=25] [--seed=1] [--timeout-s=180]
//       [--failpoints=SPEC]        server-side fault injection override
//
// Exit 0 only if every check above holds. Designed to be run under a
// ThreadSanitizer build of the server in CI (the soak smoke job).
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/testerlog.h"
#include "dict/full_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "net/client.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/cli.h"
#include "util/failpoint.h"
#include "util/rng.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_soak --server=PATH [--workers=8] [--chaos=3]\n"
               "  [--requests=25] [--seed=1] [--timeout-s=180]\n"
               "  [--failpoints=SPEC]\n");
  return 2;
}

// Default server-side fault injection: degraded syscalls on every path,
// plus rare hard resets (clients reconnect and resend — the rankings must
// still come back identical).
constexpr const char* kServerFailpoints =
    "net.read.short=every:7,net.read.eintr=every:5,net.write.short=every:9,"
    "net.write.eintr=every:11,net.accept.eintr=every:3,"
    "net.read.fail=every:97,net.write.fail=every:101";

// ---------------------------------------------------------------- fixture --

ResponseMatrix soak_matrix() {
  SynthProfile profile;
  profile.name = "soak";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 80;
  profile.seed = 0x50a6;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(11);
  tests.add_random(40, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

// The request plan is a pure function of (seed, worker, index), so the
// parent and every forked worker agree on it without any communication.
FaultId planned_fault(const ResponseMatrix& rm, std::uint64_t seed, int worker,
                      int index) {
  Rng rng(seed * 1000003 + static_cast<std::uint64_t>(worker) * 131 +
          static_cast<std::uint64_t>(index));
  return static_cast<FaultId>(rng.below(rm.num_faults()));
}

std::string frame_for(const FullDictionary& full, const ResponseMatrix& rm,
                      FaultId f) {
  std::vector<ResponseId> ids(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) ids[t] = full.entry(f, t);
  std::ostringstream os;
  write_testerlog(os, qualify(ids));
  return os.str();
}

// Reply canonicalization: everything but the volatile timing line.
std::string canonical(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines)
    if (l.rfind("timing ", 0) != 0) out += l + "\n";
  return out;
}

// ------------------------------------------------------- process plumbing --

struct ChildProc {
  pid_t pid = -1;
  int stdin_fd = -1;   // parent's write end, -1 if not captured
  int stdout_fd = -1;  // parent's read end
  int stderr_fd = -1;
};

// fork+exec `argv[0]` with selected stdio captured through pipes.
// `failpoints`: nullptr leaves SDDICT_FAILPOINTS alone in the child,
// empty string scrubs it, anything else sets it.
ChildProc spawn(const std::vector<std::string>& argv, bool capture_stdin,
                bool capture_stdout, bool capture_stderr,
                const char* failpoints) {
  int in_pipe[2] = {-1, -1}, out_pipe[2] = {-1, -1}, err_pipe[2] = {-1, -1};
  if ((capture_stdin && ::pipe(in_pipe) != 0) ||
      (capture_stdout && ::pipe(out_pipe) != 0) ||
      (capture_stderr && ::pipe(err_pipe) != 0))
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    if (capture_stdin) {
      ::dup2(in_pipe[0], 0);
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
    }
    if (capture_stdout) {
      ::dup2(out_pipe[1], 1);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
    }
    if (capture_stderr) {
      ::dup2(err_pipe[1], 2);
      ::close(err_pipe[0]);
      ::close(err_pipe[1]);
    }
    if (failpoints != nullptr) {
      if (*failpoints == '\0')
        ::unsetenv("SDDICT_FAILPOINTS");
      else
        ::setenv("SDDICT_FAILPOINTS", failpoints, 1);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "exec %s: %s\n", cargv[0], std::strerror(errno));
    ::_exit(127);
  }
  ChildProc p;
  p.pid = pid;
  if (capture_stdin) {
    ::close(in_pipe[0]);
    p.stdin_fd = in_pipe[1];
  }
  if (capture_stdout) {
    ::close(out_pipe[1]);
    p.stdout_fd = out_pipe[0];
  }
  if (capture_stderr) {
    ::close(err_pipe[1]);
    p.stderr_fd = err_pipe[0];
  }
  return p;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string read_line_fd(int fd) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || c == '\n') return line;
    line.push_back(c);
  }
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

// ---------------------------------------------------- stdio reference run --

// Drives every planned request through the server binary in stdio mode
// (serial, gate-configured) and returns the canonical reply per request.
std::vector<std::string> stdio_reference(const std::string& server,
                                         const std::string& store_path,
                                         const std::vector<std::string>& frames) {
  ChildProc proc = spawn({server, "--store=" + store_path, "--threads=1",
                          "--batch=1", "--cache=0", "--load=stream"},
                         /*stdin=*/true, /*stdout=*/true, /*stderr=*/false,
                         /*failpoints=*/"");
  // Feed from a thread: with ~hundreds of frames the reply pipe would
  // otherwise fill and deadlock against our own blocking writes.
  std::thread feeder([&] {
    for (const std::string& f : frames) {
      std::size_t off = 0;
      while (off < f.size()) {
        const ssize_t n = ::write(proc.stdin_fd, f.data() + off, f.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
    }
    (void)!::write(proc.stdin_fd, "quit\n", 5);
    ::close(proc.stdin_fd);
  });
  const std::string out = read_to_eof(proc.stdout_fd);
  feeder.join();
  ::close(proc.stdout_fd);
  const int rc = wait_exit(proc.pid);
  if (rc != 0)
    throw std::runtime_error("stdio reference server exited with " +
                             std::to_string(rc));

  std::vector<std::string> replies;
  std::istringstream is(out);
  std::vector<std::string> block;
  for (std::string line; std::getline(is, line);) {
    block.push_back(line);
    if (line == "done") {
      replies.push_back(canonical(block));
      block.clear();
    }
  }
  if (replies.size() != frames.size())
    throw std::runtime_error("stdio reference: " + std::to_string(frames.size()) +
                             " requests but " + std::to_string(replies.size()) +
                             " replies");
  return replies;
}

// ----------------------------------------------------------- soak workers --

// Worker 0: pipelines every frame in one burst to force per-session
// shedding, then reads the replies back strictly in order. Others: one
// request at a time through the retry/backoff client, reconnecting (and
// resending) when an injected hard fault kills the connection mid-flight.
// Each worker writes one record per request — `ok` + canonical reply,
// `busy`, or `fail` + reason — separated by `===` lines.
int run_worker(int worker, int port, int requests,
               const std::vector<std::string>& frames,
               const std::string& result_path) {
  // Client-side syscall degradation too: both ends of the wire misbehave.
  failpoint::arm_from_spec("net.read.short=every:11,net.write.eintr=every:13");
  std::ofstream out(result_path);
  try {
    if (worker == 0) {
      net::Client client = net::Client::connect_tcp("127.0.0.1", port, 30);
      std::string burst;
      for (const std::string& f : frames) burst += f;
      client.send_raw(burst);
      for (int i = 0; i < requests; ++i) {
        const net::Reply reply = client.read_reply();
        if (reply.busy)
          out << "busy\n";
        else if (reply.error)
          out << "fail error-reply: " << reply.error_text << "\n";
        else
          out << "ok\n" << canonical(reply.lines);
        out << "===\n";
      }
      return 0;
    }
    net::BackoffPolicy policy;
    policy.base_ms = 2;
    policy.max_ms = 120;  // stay under the server's idle reap window
    policy.max_attempts = 20;
    policy.seed = static_cast<std::uint64_t>(worker) * 7919 + 17;
    net::Client client = net::Client::connect_tcp("127.0.0.1", port, 30);
    for (int i = 0; i < requests; ++i) {
      net::Reply reply;
      bool answered = false;
      std::string failure;
      // An injected reset mid-request is a lost connection, not a lost
      // request: reconnect and resend (queries are idempotent).
      for (int attempt = 0; attempt < 4 && !answered; ++attempt) {
        try {
          if (!client.connected())
            client = net::Client::connect_tcp("127.0.0.1", port, 30);
          reply = client.request_with_retry(frames[static_cast<std::size_t>(i)],
                                            policy);
          answered = true;
        } catch (const std::exception& e) {
          failure = e.what();
          client.close();
        }
      }
      if (!answered)
        out << "fail " << failure << "\n";
      else if (reply.busy)
        out << "busy\n";
      else if (reply.error)
        out << "fail error-reply: " << reply.error_text << "\n";
      else
        out << "ok\n" << canonical(reply.lines);
      out << "===\n";
    }
    return 0;
  } catch (const std::exception& e) {
    out << "fail " << e.what() << "\n===\n";
    return 1;
  }
}

// Chaos worker: garbage frames (must get an explicit error reply),
// mid-frame disconnects, slow-loris dribbles, stats probes. Nothing here
// may hang, and none of it may disturb the identity workers.
int run_chaos(int worker, int port, int iters) {
  Rng rng(0xc4a05 + static_cast<std::uint64_t>(worker));
  try {
    for (int i = 0; i < iters; ++i) {
      switch (rng.below(4)) {
        case 0: {  // malformed datalog -> explicit error, session survives
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          const net::Reply r = c.request("t 0 garbage\nend\n");
          if (!r.error) return 1;
          break;
        }
        case 1: {  // mid-frame disconnect
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          c.send_raw("sddict testerlog v1\ntests 40\nt 0 1\n");
          break;  // destructor closes with the frame open
        }
        case 2: {  // slow loris: open a frame, dribble, vanish
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          c.send_raw("sddict testerlog v1\n");
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          c.send_raw("tests 40\n");
          break;
        }
        default: {  // stats probe
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          const std::string line = c.command_line("stats");
          if (line.rfind("stats ", 0) != 0) return 1;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return 0;
  } catch (const std::exception&) {
    // The server may legitimately reap a dribbling chaos session; only
    // the identity workers define pass/fail beyond the checks above.
    return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"server", "workers", "chaos", "requests", "seed", "timeout-s",
       "failpoints"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::string server;
  int workers = 8, chaos = 3, requests = 25;
  std::uint64_t seed = 1;
  std::string server_failpoints;
  try {
    server = args.get("server");
    if (server.empty()) throw std::invalid_argument("--server=PATH is required");
    workers = static_cast<int>(args.get_int("workers", 8, 1, 256));
    chaos = static_cast<int>(args.get_int("chaos", 3, 0, 256));
    requests = static_cast<int>(args.get_int("requests", 25, 1, 10000));
    seed = static_cast<std::uint64_t>(args.get_int("seed", 1, 0));
    server_failpoints = args.get("failpoints", kServerFailpoints);
    // A wedged soak must die loudly, not hang CI.
    ::alarm(static_cast<unsigned>(args.get_int("timeout-s", 180, 1, 3600)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  try {
    // ---- fixture + request plan (shared with workers through fork) ----
    const ResponseMatrix rm = soak_matrix();
    const SameDifferentDictionary sd = SameDifferentDictionary::build(
        rm, std::vector<ResponseId>(rm.num_tests(), 0));
    const FullDictionary full = FullDictionary::build(rm);

    char dir_template[] = "/tmp/sddict_soakXXXXXX";
    if (::mkdtemp(dir_template) == nullptr)
      throw std::runtime_error(std::string("mkdtemp: ") + std::strerror(errno));
    const std::string dir = dir_template;
    const std::string store_path = dir + "/soak.store";
    SignatureStore::build(sd).write_file(store_path);

    std::vector<std::vector<std::string>> frames(
        static_cast<std::size_t>(workers));
    std::vector<std::string> flat;
    for (int w = 0; w < workers; ++w)
      for (int i = 0; i < requests; ++i) {
        frames[static_cast<std::size_t>(w)].push_back(
            frame_for(full, rm, planned_fault(rm, seed, w, i)));
        flat.push_back(frames[static_cast<std::size_t>(w)].back());
      }

    // ---- pass 1: the serial stdio reference through the same binary ----
    const std::vector<std::string> reference =
        stdio_reference(server, store_path, flat);
    std::fprintf(stderr, "soak: stdio reference captured (%zu replies)\n",
                 reference.size());

    // ---- pass 2: TCP server under tiny limits + injected faults ----
    ChildProc srv = spawn(
        {server, "--store=" + store_path, "--tcp=0", "--threads=2", "--batch=4",
         "--cache=64", "--max-inflight=4", "--pending=6", "--session-inflight=4",
         "--busy-retry-ms=2", "--idle-timeout-ms=2000", "--frame-timeout-ms=300",
         "--write-timeout-ms=5000"},
        /*stdin=*/false, /*stdout=*/false, /*stderr=*/true,
        server_failpoints.c_str());
    int port = -1;
    std::string startup;
    for (int i = 0; i < 50 && port < 0; ++i) {
      const std::string line = read_line_fd(srv.stderr_fd);
      if (line.empty()) break;
      startup += line + "\n";
      const std::size_t at = line.find("listening on tcp ");
      if (at != std::string::npos) {
        // "listening on tcp 127.0.0.1:38259 (kernels: ...)" — the port is
        // the host:port token's suffix, not the line's last colon.
        std::string endpoint = line.substr(at + 17);
        endpoint = endpoint.substr(0, endpoint.find(' '));
        const std::size_t colon = endpoint.rfind(':');
        if (colon != std::string::npos)
          port = std::atoi(endpoint.c_str() + colon + 1);
      }
    }
    if (port <= 0) {
      std::fprintf(stderr, "soak: server never reported a port:\n%s",
                   startup.c_str());
      ::kill(srv.pid, SIGKILL);
      wait_exit(srv.pid);
      return 1;
    }
    std::fprintf(stderr, "soak: server pid %d on port %d, failpoints: %s\n",
                 static_cast<int>(srv.pid), port, server_failpoints.c_str());

    // ---- fork the fleet ----
    std::vector<pid_t> pids;
    for (int w = 0; w < workers; ++w) {
      const std::string path = dir + "/worker_" + std::to_string(w) + ".txt";
      const pid_t pid = ::fork();
      if (pid < 0) throw std::runtime_error("fork worker");
      if (pid == 0)
        ::_exit(run_worker(w, port, requests, frames[static_cast<std::size_t>(w)],
                           path));
      pids.push_back(pid);
    }
    for (int c = 0; c < chaos; ++c) {
      const pid_t pid = ::fork();
      if (pid < 0) throw std::runtime_error("fork chaos");
      if (pid == 0) ::_exit(run_chaos(c, port, 3 * requests / 2));
      pids.push_back(pid);
    }
    int child_failures = 0;
    for (const pid_t pid : pids)
      if (wait_exit(pid) != 0) ++child_failures;

    // ---- final stats probe, then clean shutdown ----
    std::uint64_t busy_shed = 0;
    {
      net::Client probe = net::Client::connect_tcp("127.0.0.1", port, 30);
      const std::string line = probe.command_line("stats");
      const std::size_t at = line.find(" busy_shed=");
      if (at != std::string::npos)
        busy_shed = std::strtoull(line.c_str() + at + 11, nullptr, 10);
      std::fprintf(stderr, "soak: %s\n", line.c_str());
    }
    ::kill(srv.pid, SIGTERM);
    const std::string drained = read_to_eof(srv.stderr_fd);
    ::close(srv.stderr_fd);
    const int server_rc = wait_exit(srv.pid);
    std::fprintf(stderr, "%s", drained.c_str());

    // ---- diff worker records against the stdio reference ----
    std::size_t ok = 0, busy = 0, mismatches = 0, fails = 0;
    for (int w = 0; w < workers; ++w) {
      std::ifstream in(dir + "/worker_" + std::to_string(w) + ".txt");
      std::string record;
      int index = 0;
      for (std::string line; std::getline(in, line);) {
        if (line != "===") {
          record += line + "\n";
          continue;
        }
        const std::size_t ref =
            static_cast<std::size_t>(w) * static_cast<std::size_t>(requests) +
            static_cast<std::size_t>(index);
        if (record == "busy\n") {
          ++busy;
        } else if (record.rfind("ok\n", 0) == 0) {
          if (record.substr(3) == reference[ref]) {
            ++ok;
          } else {
            ++mismatches;
            std::fprintf(stderr,
                         "soak: MISMATCH worker %d request %d:\n-- got --\n%s"
                         "-- want --\n%s",
                         w, index, record.substr(3).c_str(),
                         reference[ref].c_str());
          }
        } else {
          ++fails;
          std::fprintf(stderr, "soak: worker %d request %d: %s", w, index,
                       record.c_str());
        }
        record.clear();
        ++index;
      }
      if (index != requests) {
        std::fprintf(stderr, "soak: worker %d answered %d/%d requests\n", w,
                     index, requests);
        ++child_failures;
      }
    }

    const std::size_t total =
        static_cast<std::size_t>(workers) * static_cast<std::size_t>(requests);
    std::printf(
        "soak: workers=%d chaos=%d requests=%zu ok=%zu busy=%zu "
        "mismatches=%zu fails=%zu child_failures=%d busy_shed=%llu "
        "server_exit=%d\n",
        workers, chaos, total, ok, busy, mismatches, fails, child_failures,
        static_cast<unsigned long long>(busy_shed), server_rc);

    bool pass = mismatches == 0 && fails == 0 && child_failures == 0 &&
                server_rc == 0 && ok + busy == total;
    if (busy_shed == 0) {
      std::fprintf(stderr, "soak: FAIL — no load shedding observed\n");
      pass = false;
    }
    if (ok == 0) {
      std::fprintf(stderr, "soak: FAIL — no successful rankings verified\n");
      pass = false;
    }
    std::printf("soak: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_soak: %s\n", e.what());
    return 1;
  }
}
