// Multi-process soak/load generator for the networked serving tier
// (ISSUE 7 acceptance harness) and the supervised fleet (ISSUE 8).
//
// What one run proves:
//
//   1. Byte identity under concurrency, overload and injected faults —
//      the parent first drives every planned request through the SAME
//      server binary in single-connection stdio mode (threads=1, batch=1,
//      cache off: the serial reference), then starts it as a TCP server
//      under deliberately tiny admission limits with syscall failpoints
//      armed (short reads, spurious EINTR, hard resets — via
//      SDDICT_FAILPOINTS) and hammers it with >= 8 forked client
//      processes. Every non-busy ranking a worker records must match the
//      stdio reference byte for byte (the volatile timing line is the
//      only permitted difference).
//   2. Every request is answered — each worker accounts for every request
//      it sent: a full diagnosis, an explicit `busy retry_after_ms=N`
//      reply, or a hard failure (which fails the run). Hangs surface as
//      client I/O timeouts, not as a wedged harness.
//   3. Overload sheds explicitly — worker 0 pipelines its whole request
//      stream in one burst against a small per-session in-flight cap, so
//      the server MUST shed (the parent asserts busy_shed > 0 in the
//      final stats probe), and sheds arrive in request order behind
//      earlier replies.
//   4. Chaos does not leak — dedicated chaos workers feed the server
//      garbage frames, mid-frame disconnects, slow-loris dribbles and
//      stats probes the whole time; the run still has to satisfy 1-3.
//   5. Clean drain — the parent SIGTERMs the server and requires exit 0
//      (the event loop drains and returns; the `drained:` stderr line is
//      echoed into the report).
//
// Fleet chaos mode (--fleet=PATH pointing at sddict_fleet): the same
// request plan and stdio reference, but the far end is a supervised
// fleet of --backends sddict_serve processes behind the failover proxy.
// On top of checks 1-5 (against the proxy port) the run also:
//
//   6. kill -9s a random healthy backend every --kill-every-ms while the
//      workers hammer — the supervisor must respawn it (respawns >= 1)
//      and the proxy must fail its in-flight requests over (failovers
//      >= 1) without any client seeing a lost or duplicated reply.
//   7. Publishes v2 of the dictionary mid-run and issues a fleet-wide
//      `!reload`; afterwards every healthy backend must serve version 2
//      (the epoch flip is all-or-nothing, never a mixed fleet).
//   8. Measures a serial client's qps/p50/p99 twice — once on the quiet
//      healthy fleet, once mid-chaos — and (with --json=FILE) writes the
//      four numbers plus the chaos counters as BENCH records.
//
//   $ ./bench_soak --server=./examples/sddict_serve [--workers=8]
//       [--chaos=3] [--requests=25] [--seed=1] [--timeout-s=180]
//       [--failpoints=SPEC]        server-side fault injection override
//       [--fleet=./examples/sddict_fleet] [--backends=3]
//       [--kill-every-ms=400] [--json=FILE]
//
// Exit 0 only if every check above holds. Designed to be run under a
// ThreadSanitizer build of the server in CI (the soak smoke job).
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bmcirc/synth.h"
#include "diag/testerlog.h"
#include "dict/full_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "json_writer.h"
#include "net/client.h"
#include "repo/repository.h"
#include "sim/response.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/cli.h"
#include "util/failpoint.h"
#include "util/rng.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_soak --server=PATH [--workers=8] [--chaos=3]\n"
               "  [--requests=25] [--seed=1] [--timeout-s=180]\n"
               "  [--failpoints=SPEC]\n"
               "  [--fleet=PATH] [--backends=3] [--kill-every-ms=400]\n"
               "  [--json=FILE]\n");
  return 2;
}

// Default server-side fault injection: degraded syscalls on every path,
// plus rare hard resets (clients reconnect and resend — the rankings must
// still come back identical).
constexpr const char* kServerFailpoints =
    "net.read.short=every:7,net.read.eintr=every:5,net.write.short=every:9,"
    "net.write.eintr=every:11,net.accept.eintr=every:3,"
    "net.read.fail=every:97,net.write.fail=every:101";

// ---------------------------------------------------------------- fixture --

ResponseMatrix soak_matrix() {
  SynthProfile profile;
  profile.name = "soak";
  profile.inputs = 10;
  profile.outputs = 4;
  profile.dffs = 0;
  profile.gates = 80;
  profile.seed = 0x50a6;
  const Netlist nl = generate_synthetic(profile);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(11);
  tests.add_random(40, rng);
  ResponseMatrixStatus status;
  return build_response_matrix(nl, faults, tests, {.store_diff_outputs = true},
                               &status);
}

// The request plan is a pure function of (seed, worker, index), so the
// parent and every forked worker agree on it without any communication.
FaultId planned_fault(const ResponseMatrix& rm, std::uint64_t seed, int worker,
                      int index) {
  Rng rng(seed * 1000003 + static_cast<std::uint64_t>(worker) * 131 +
          static_cast<std::uint64_t>(index));
  return static_cast<FaultId>(rng.below(rm.num_faults()));
}

std::string frame_for(const FullDictionary& full, const ResponseMatrix& rm,
                      FaultId f) {
  std::vector<ResponseId> ids(rm.num_tests());
  for (std::size_t t = 0; t < rm.num_tests(); ++t) ids[t] = full.entry(f, t);
  std::ostringstream os;
  write_testerlog(os, qualify(ids));
  return os.str();
}

// Reply canonicalization: everything but the volatile timing line.
std::string canonical(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines)
    if (l.rfind("timing ", 0) != 0) out += l + "\n";
  return out;
}

double mono_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------- process plumbing --

struct ChildProc {
  pid_t pid = -1;
  int stdin_fd = -1;   // parent's write end, -1 if not captured
  int stdout_fd = -1;  // parent's read end
  int stderr_fd = -1;
};

// fork+exec `argv[0]` with selected stdio captured through pipes.
// `failpoints`: nullptr leaves SDDICT_FAILPOINTS alone in the child,
// empty string scrubs it, anything else sets it.
ChildProc spawn(const std::vector<std::string>& argv, bool capture_stdin,
                bool capture_stdout, bool capture_stderr,
                const char* failpoints) {
  int in_pipe[2] = {-1, -1}, out_pipe[2] = {-1, -1}, err_pipe[2] = {-1, -1};
  if ((capture_stdin && ::pipe(in_pipe) != 0) ||
      (capture_stdout && ::pipe(out_pipe) != 0) ||
      (capture_stderr && ::pipe(err_pipe) != 0))
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    if (capture_stdin) {
      ::dup2(in_pipe[0], 0);
      ::close(in_pipe[0]);
      ::close(in_pipe[1]);
    }
    if (capture_stdout) {
      ::dup2(out_pipe[1], 1);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
    }
    if (capture_stderr) {
      ::dup2(err_pipe[1], 2);
      ::close(err_pipe[0]);
      ::close(err_pipe[1]);
    }
    if (failpoints != nullptr) {
      if (*failpoints == '\0')
        ::unsetenv("SDDICT_FAILPOINTS");
      else
        ::setenv("SDDICT_FAILPOINTS", failpoints, 1);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    std::fprintf(stderr, "exec %s: %s\n", cargv[0], std::strerror(errno));
    ::_exit(127);
  }
  ChildProc p;
  p.pid = pid;
  if (capture_stdin) {
    ::close(in_pipe[0]);
    p.stdin_fd = in_pipe[1];
  }
  if (capture_stdout) {
    ::close(out_pipe[1]);
    p.stdout_fd = out_pipe[0];
  }
  if (capture_stderr) {
    ::close(err_pipe[1]);
    p.stderr_fd = err_pipe[0];
  }
  return p;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

std::string read_line_fd(int fd) {
  std::string line;
  char c;
  for (;;) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || c == '\n') return line;
    line.push_back(c);
  }
}

int wait_exit(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

// ---------------------------------------------------- stdio reference run --

// Drives every planned request through the server binary in stdio mode
// (serial, gate-configured) and returns the canonical reply per request.
std::vector<std::string> stdio_reference(const std::string& server,
                                         const std::string& store_path,
                                         const std::vector<std::string>& frames) {
  ChildProc proc = spawn({server, "--store=" + store_path, "--threads=1",
                          "--batch=1", "--cache=0", "--load=stream"},
                         /*stdin=*/true, /*stdout=*/true, /*stderr=*/false,
                         /*failpoints=*/"");
  // Feed from a thread: with ~hundreds of frames the reply pipe would
  // otherwise fill and deadlock against our own blocking writes.
  std::thread feeder([&] {
    for (const std::string& f : frames) {
      std::size_t off = 0;
      while (off < f.size()) {
        const ssize_t n = ::write(proc.stdin_fd, f.data() + off, f.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
    }
    (void)!::write(proc.stdin_fd, "quit\n", 5);
    ::close(proc.stdin_fd);
  });
  const std::string out = read_to_eof(proc.stdout_fd);
  feeder.join();
  ::close(proc.stdout_fd);
  const int rc = wait_exit(proc.pid);
  if (rc != 0)
    throw std::runtime_error("stdio reference server exited with " +
                             std::to_string(rc));

  std::vector<std::string> replies;
  std::istringstream is(out);
  std::vector<std::string> block;
  for (std::string line; std::getline(is, line);) {
    block.push_back(line);
    if (line == "done") {
      replies.push_back(canonical(block));
      block.clear();
    }
  }
  if (replies.size() != frames.size())
    throw std::runtime_error("stdio reference: " + std::to_string(frames.size()) +
                             " requests but " + std::to_string(replies.size()) +
                             " replies");
  return replies;
}

// ----------------------------------------------------------- soak workers --

// Worker 0: pipelines every frame in one burst to force per-session
// shedding, then reads the replies back strictly in order. Others: one
// request at a time through the retry/backoff client, reconnecting (and
// resending) when an injected hard fault kills the connection mid-flight.
// Each worker writes one record per request — `ok` + canonical reply,
// `busy`, or `fail` + reason — separated by `===` lines.
int run_worker(int worker, int port, int requests,
               const std::vector<std::string>& frames,
               const std::string& result_path) {
  // Client-side syscall degradation too: both ends of the wire misbehave.
  failpoint::arm_from_spec("net.read.short=every:11,net.write.eintr=every:13");
  std::ofstream out(result_path);
  try {
    if (worker == 0) {
      net::Client client = net::Client::connect_tcp("127.0.0.1", port, 30);
      std::string burst;
      for (const std::string& f : frames) burst += f;
      client.send_raw(burst);
      for (int i = 0; i < requests; ++i) {
        const net::Reply reply = client.read_reply();
        if (reply.busy)
          out << "busy\n";
        else if (reply.error)
          out << "fail error-reply: " << reply.error_text << "\n";
        else
          out << "ok\n" << canonical(reply.lines);
        out << "===\n";
      }
      return 0;
    }
    net::BackoffPolicy policy;
    policy.base_ms = 2;
    policy.max_ms = 120;  // stay under the server's idle reap window
    policy.max_attempts = 20;
    policy.seed = static_cast<std::uint64_t>(worker) * 7919 + 17;
    net::Client client = net::Client::connect_tcp("127.0.0.1", port, 30);
    for (int i = 0; i < requests; ++i) {
      net::Reply reply;
      bool answered = false;
      std::string failure;
      // An injected reset mid-request is a lost connection, not a lost
      // request: reconnect and resend (queries are idempotent).
      for (int attempt = 0; attempt < 4 && !answered; ++attempt) {
        try {
          if (!client.connected())
            client = net::Client::connect_tcp("127.0.0.1", port, 30);
          reply = client.request_with_retry(frames[static_cast<std::size_t>(i)],
                                            policy);
          answered = true;
        } catch (const std::exception& e) {
          failure = e.what();
          client.close();
        }
      }
      if (!answered)
        out << "fail " << failure << "\n";
      else if (reply.busy)
        out << "busy\n";
      else if (reply.error)
        out << "fail error-reply: " << reply.error_text << "\n";
      else
        out << "ok\n" << canonical(reply.lines);
      out << "===\n";
    }
    return 0;
  } catch (const std::exception& e) {
    out << "fail " << e.what() << "\n===\n";
    return 1;
  }
}

// Chaos worker: garbage frames (must get an explicit error reply),
// mid-frame disconnects, slow-loris dribbles, stats probes. Nothing here
// may hang, and none of it may disturb the identity workers.
int run_chaos(int worker, int port, int iters) {
  Rng rng(0xc4a05 + static_cast<std::uint64_t>(worker));
  try {
    for (int i = 0; i < iters; ++i) {
      switch (rng.below(4)) {
        case 0: {  // malformed datalog -> explicit error, session survives
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          const net::Reply r = c.request("t 0 garbage\nend\n");
          if (!r.error) return 1;
          break;
        }
        case 1: {  // mid-frame disconnect
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          c.send_raw("sddict testerlog v1\ntests 40\nt 0 1\n");
          break;  // destructor closes with the frame open
        }
        case 2: {  // slow loris: open a frame, dribble, vanish
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          c.send_raw("sddict testerlog v1\n");
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          c.send_raw("tests 40\n");
          break;
        }
        default: {  // stats probe
          net::Client c = net::Client::connect_tcp("127.0.0.1", port, 30);
          const std::string line = c.command_line("stats");
          if (line.rfind("stats ", 0) != 0) return 1;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return 0;
  } catch (const std::exception&) {
    // The server may legitimately reap a dribbling chaos session; only
    // the identity workers define pass/fail beyond the checks above.
    return 0;
  }
}

// Forks the identity + chaos workers against `port` and returns the pids.
std::vector<pid_t> fork_workers(const std::string& dir, int workers, int chaos,
                                int port, int requests,
                                const std::vector<std::vector<std::string>>& frames) {
  std::vector<pid_t> pids;
  for (int w = 0; w < workers; ++w) {
    const std::string path = dir + "/worker_" + std::to_string(w) + ".txt";
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork worker");
    if (pid == 0)
      ::_exit(run_worker(w, port, requests, frames[static_cast<std::size_t>(w)],
                         path));
    pids.push_back(pid);
  }
  for (int c = 0; c < chaos; ++c) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork chaos");
    if (pid == 0) ::_exit(run_chaos(c, port, 3 * requests / 2));
    pids.push_back(pid);
  }
  return pids;
}

// Diffs every worker's record file against the stdio reference.
struct DiffTally {
  std::size_t ok = 0, busy = 0, mismatches = 0, fails = 0;
  int incomplete = 0;  // workers that answered fewer requests than planned
};

DiffTally diff_worker_records(const std::string& dir, int workers, int requests,
                              const std::vector<std::string>& reference) {
  DiffTally t;
  for (int w = 0; w < workers; ++w) {
    std::ifstream in(dir + "/worker_" + std::to_string(w) + ".txt");
    std::string record;
    int index = 0;
    for (std::string line; std::getline(in, line);) {
      if (line != "===") {
        record += line + "\n";
        continue;
      }
      const std::size_t ref =
          static_cast<std::size_t>(w) * static_cast<std::size_t>(requests) +
          static_cast<std::size_t>(index);
      if (record == "busy\n") {
        ++t.busy;
      } else if (record.rfind("ok\n", 0) == 0) {
        if (record.substr(3) == reference[ref]) {
          ++t.ok;
        } else {
          ++t.mismatches;
          std::fprintf(stderr,
                       "soak: MISMATCH worker %d request %d:\n-- got --\n%s"
                       "-- want --\n%s",
                       w, index, record.substr(3).c_str(),
                       reference[ref].c_str());
        }
      } else {
        ++t.fails;
        std::fprintf(stderr, "soak: worker %d request %d: %s", w, index,
                     record.c_str());
      }
      record.clear();
      ++index;
    }
    if (index != requests) {
      std::fprintf(stderr, "soak: worker %d answered %d/%d requests\n", w,
                   index, requests);
      ++t.incomplete;
    }
  }
  return t;
}

// ------------------------------------------------------- fleet chaos mode --

// Polls the sddict_fleet --port-file handshake until the proxy address
// appears (whole-file atomic rename, so a partial read is impossible).
int wait_port_file(const std::string& path, double timeout_ms) {
  const double deadline = mono_ms() + timeout_ms;
  while (mono_ms() < deadline) {
    std::ifstream in(path);
    std::string line;
    if (in && std::getline(in, line)) {
      const std::size_t colon = line.rfind(':');
      if (colon != std::string::npos) {
        const int port = std::atoi(line.c_str() + colon + 1);
        if (port > 0) return port;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

// One `!fleet` round trip (fresh connection; the proxy answers it inline
// even mid-flip). Throws on I/O failure.
std::vector<std::string> fleet_probe(int port) {
  net::Client c = net::Client::connect_tcp("127.0.0.1", port, 10);
  c.send_raw("!fleet\n");
  return c.read_reply().lines;
}

// " key=123" field out of a status line; 0 when absent.
std::uint64_t line_counter(const std::string& line, const std::string& key) {
  const std::size_t at = line.find(" " + key + "=");
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + key.size() + 2, nullptr, 10);
}

// Polls `!fleet` until `want_healthy` backends are healthy — and, when
// `want_version` > 0, every healthy backend serves exactly that version
// (the epoch-flip acceptance: never a mixed fleet at convergence) — and
// the respawn counter has reached `min_respawns`. Reports the last-seen
// respawn/failover counters either way.
bool wait_fleet_converged(int port, int want_healthy,
                          std::uint64_t want_version,
                          std::uint64_t min_respawns, double timeout_ms,
                          std::uint64_t* respawns, std::uint64_t* failovers) {
  const double deadline = mono_ms() + timeout_ms;
  while (mono_ms() < deadline) {
    try {
      const std::vector<std::string> lines = fleet_probe(port);
      int healthy = 0;
      bool versions_ok = true;
      std::uint64_t seen_respawns = 0, seen_failovers = 0;
      for (const std::string& l : lines) {
        if (l.rfind("fleet ", 0) == 0) {
          seen_respawns = line_counter(l, "respawns");
          seen_failovers = line_counter(l, "failovers");
          continue;
        }
        if (l.rfind("backend ", 0) != 0 ||
            l.find(" state=healthy") == std::string::npos)
          continue;
        ++healthy;
        if (want_version > 0 && line_counter(l, "version") != want_version)
          versions_ok = false;
      }
      if (respawns != nullptr) *respawns = seen_respawns;
      if (failovers != nullptr) *failovers = seen_failovers;
      if (healthy >= want_healthy && versions_ok &&
          seen_respawns >= min_respawns)
        return true;
    } catch (const std::exception&) {
      // Transient probe failure; the fleet may be mid-recovery.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

// The chaos killer: every `every_ms`, kill -9 one random healthy backend.
// Never the last one — the point is proving failover, not an outage.
void kill_loop(int port, double every_ms, std::atomic<bool>* stop,
               std::atomic<int>* kills) {
  Rng rng(0xf1ee7);
  double next = mono_ms() + every_ms;
  while (!stop->load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (mono_ms() < next) continue;
    next = mono_ms() + every_ms;
    try {
      const std::vector<std::string> lines = fleet_probe(port);
      std::vector<int> pids;
      for (const std::string& l : lines) {
        if (l.rfind("backend ", 0) != 0 ||
            l.find(" state=healthy") == std::string::npos)
          continue;
        const std::size_t at = l.find(" pid=");
        if (at != std::string::npos) pids.push_back(std::atoi(l.c_str() + at + 5));
      }
      if (pids.size() < 2) continue;
      const int victim = pids[rng.below(pids.size())];
      if (victim > 1 && ::kill(victim, SIGKILL) == 0) {
        kills->fetch_add(1);
        std::fprintf(stderr, "soak[fleet]: kill -9 backend pid %d\n", victim);
      }
    } catch (const std::exception&) {
      // Probe shed or proxy busy; try again next tick.
    }
  }
}

// One serial measurement pass: every frame answered (reconnect + resend on
// a severed connection, backoff on busy), per-request latency recorded.
struct MeasuredPass {
  double qps = 0, p50_ms = 0, p99_ms = 0;
};

double percentile_ms(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double rank = std::ceil(p * static_cast<double>(v.size()));
  std::size_t idx = rank <= 1 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

MeasuredPass measure_pass(int port, const std::vector<std::string>& frames,
                          const char* label) {
  net::BackoffPolicy policy;
  policy.base_ms = 2;
  policy.max_ms = 200;
  policy.max_attempts = 40;
  policy.seed = 0x9e3779b9;
  net::Client client = net::Client::connect_tcp("127.0.0.1", port, 60);
  std::vector<double> lat;
  lat.reserve(frames.size());
  const double t0 = mono_ms();
  for (const std::string& f : frames) {
    const double started = mono_ms();
    bool answered = false;
    std::string failure = "busy retries exhausted";
    for (int attempt = 0; attempt < 8 && !answered; ++attempt) {
      try {
        if (!client.connected())
          client = net::Client::connect_tcp("127.0.0.1", port, 60);
        const net::Reply r = client.request_with_retry(f, policy);
        if (r.busy) continue;  // schedule exhausted; start a fresh one
        if (r.error) throw std::runtime_error("error reply: " + r.error_text);
        answered = true;
      } catch (const std::exception& e) {
        failure = e.what();
        client.close();
      }
    }
    if (!answered)
      throw std::runtime_error(std::string("measurement (") + label +
                               "): request unanswered: " + failure);
    lat.push_back(mono_ms() - started);
  }
  MeasuredPass m;
  const double wall_ms = mono_ms() - t0;
  if (wall_ms > 0)
    m.qps = 1000.0 * static_cast<double>(frames.size()) / wall_ms;
  m.p50_ms = percentile_ms(lat, 0.50);
  m.p99_ms = percentile_ms(lat, 0.99);
  std::fprintf(stderr,
               "soak[fleet]: %s pass: %zu requests, %.0f qps, p50 %.2f ms, "
               "p99 %.2f ms\n",
               label, frames.size(), m.qps, m.p50_ms, m.p99_ms);
  return m;
}

struct FleetConfig {
  std::string fleet_binary;
  std::string server_binary;
  std::string backend_failpoints;
  std::string json_path;
  int backends = 3;
  int workers = 8;
  int chaos = 3;
  int requests = 25;
  double kill_every_ms = 400;
  std::uint64_t seed = 1;
};

// The fleet run: checks 1-5 against the proxy port, plus kill -9 respawn,
// failover, and the mid-run epoch flip (checks 6-8 in the header comment).
int run_fleet(const FleetConfig& cfg, const std::string& dir,
              const ResponseMatrix& rm, const FullDictionary& full,
              const SameDifferentDictionary& sd,
              const std::vector<std::vector<std::string>>& frames,
              const std::vector<std::string>& reference) {
  // v1 into a fresh repository; the backends serve (soak, sd) from it.
  DictionaryRepository repo(dir + "/repo");
  repo.publish("soak", StoreSource::kSameDifferent, SignatureStore::build(sd),
               Provenance{});

  const std::string port_file = dir + "/fleet.port";
  // The proxy gets its own deliberate fault: sever a proxy->backend
  // connection mid-stream every ~100 flushes, so failovers are exercised
  // even between kill -9s. Backends get the usual syscall degradation.
  ChildProc fp = spawn(
      {cfg.fleet_binary, "--repo=" + dir + "/repo", "--circuit=soak",
       "--backends=" + std::to_string(cfg.backends),
       "--serve-bin=" + cfg.server_binary, "--port-file=" + port_file,
       "--respawn-min-ms=100", "--respawn-max-ms=1000",
       "--probe-interval-ms=50", "--probation-ms=250", "--max-failovers=8",
       "--failpoints=fleet.backend.reset=every:101",
       "--backend-failpoints=" + cfg.backend_failpoints},
      /*stdin=*/false, /*stdout=*/false, /*stderr=*/false, /*failpoints=*/"");
  const int port = wait_port_file(port_file, 20000);
  if (port <= 0) {
    std::fprintf(stderr, "soak[fleet]: proxy never wrote %s\n",
                 port_file.c_str());
    ::kill(fp.pid, SIGKILL);
    wait_exit(fp.pid);
    return 1;
  }
  std::fprintf(stderr, "soak[fleet]: proxy pid %d on port %d (%d backends)\n",
               static_cast<int>(fp.pid), port, cfg.backends);

  bool pass = true;
  if (!wait_fleet_converged(port, cfg.backends, /*want_version=*/1,
                            /*min_respawns=*/0, 15000, nullptr, nullptr)) {
    std::fprintf(stderr, "soak[fleet]: FAIL — fleet never became healthy\n");
    pass = false;
  }

  // ---- healthy-fleet measurement (serial client, quiet fleet) ----
  std::vector<std::string> probes_healthy, probes_degraded;
  for (int i = 0; i < 120; ++i) {
    probes_healthy.push_back(
        frame_for(full, rm, planned_fault(rm, cfg.seed, 101, i)));
    probes_degraded.push_back(
        frame_for(full, rm, planned_fault(rm, cfg.seed, 103, i)));
  }
  MeasuredPass healthy{}, degraded{};
  if (pass) healthy = measure_pass(port, probes_healthy, "healthy");

  // ---- chaos: v2 published, workers forked, killer running ----
  repo.publish("soak", StoreSource::kSameDifferent, SignatureStore::build(sd),
               Provenance{});
  std::atomic<bool> stop{false};
  std::atomic<int> kills{0};
  std::thread killer(kill_loop, port, cfg.kill_every_ms, &stop, &kills);
  std::vector<pid_t> pids =
      fork_workers(dir, cfg.workers, cfg.chaos, port, cfg.requests, frames);

  // Fleet-wide epoch flip mid-chaos. The reply arrives only after every
  // in-rotation backend acked the new version.
  try {
    net::Client c = net::Client::connect_tcp("127.0.0.1", port, 60);
    c.send_raw("!reload\n");
    const net::Reply r = c.read_reply();
    if (r.error || r.lines.empty() ||
        r.lines.front().rfind("reloaded backends=", 0) != 0) {
      std::fprintf(stderr, "soak[fleet]: FAIL — flip replied: %s\n",
                   r.lines.empty() ? "(nothing)" : r.lines.front().c_str());
      pass = false;
    } else {
      std::fprintf(stderr, "soak[fleet]: %s\n", r.lines.front().c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak[fleet]: FAIL — flip: %s\n", e.what());
    pass = false;
  }

  try {
    if (pass) degraded = measure_pass(port, probes_degraded, "degraded");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak[fleet]: FAIL — %s\n", e.what());
    pass = false;
  }

  int child_failures = 0;
  for (const pid_t pid : pids)
    if (wait_exit(pid) != 0) ++child_failures;

  // Keep the killer alive until it has landed at least one kill (a very
  // fast run could otherwise finish between ticks).
  const double kill_deadline = mono_ms() + 5000;
  while (kills.load() == 0 && mono_ms() < kill_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  killer.join();

  // ---- convergence: every backend healthy again, all at version 2 ----
  std::uint64_t respawns = 0, failovers = 0;
  const bool converged =
      wait_fleet_converged(port, cfg.backends, /*want_version=*/2,
                           /*min_respawns=*/1, 20000, &respawns, &failovers);
  if (!converged) {
    std::fprintf(stderr,
                 "soak[fleet]: FAIL — no convergence to a healthy v2 fleet "
                 "(respawns=%llu)\n",
                 static_cast<unsigned long long>(respawns));
    pass = false;
  }

  // ---- final stats probe, then clean shutdown ----
  std::uint64_t busy_shed = 0;
  try {
    net::Client probe = net::Client::connect_tcp("127.0.0.1", port, 30);
    const std::string line = probe.command_line("stats");
    const std::size_t at = line.find(" busy_shed=");
    if (at != std::string::npos)
      busy_shed = std::strtoull(line.c_str() + at + 11, nullptr, 10);
    std::fprintf(stderr, "soak[fleet]: %s\n", line.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "soak[fleet]: FAIL — stats probe: %s\n", e.what());
    pass = false;
  }
  ::kill(fp.pid, SIGTERM);
  const int fleet_rc = wait_exit(fp.pid);

  // ---- diff worker records against the stdio reference ----
  const DiffTally t =
      diff_worker_records(dir, cfg.workers, cfg.requests, reference);
  child_failures += t.incomplete;

  const std::size_t total = static_cast<std::size_t>(cfg.workers) *
                            static_cast<std::size_t>(cfg.requests);
  std::printf(
      "soak[fleet]: backends=%d workers=%d requests=%zu ok=%zu busy=%zu "
      "mismatches=%zu fails=%zu child_failures=%d busy_shed=%llu kills=%d "
      "respawns=%llu failovers=%llu fleet_exit=%d\n",
      cfg.backends, cfg.workers, total, t.ok, t.busy, t.mismatches, t.fails,
      child_failures, static_cast<unsigned long long>(busy_shed), kills.load(),
      static_cast<unsigned long long>(respawns),
      static_cast<unsigned long long>(failovers), fleet_rc);

  pass = pass && t.mismatches == 0 && t.fails == 0 && child_failures == 0 &&
         fleet_rc == 0 && t.ok + t.busy == total && t.ok > 0;
  if (busy_shed == 0) {
    std::fprintf(stderr, "soak[fleet]: FAIL — no load shedding observed\n");
    pass = false;
  }
  if (kills.load() == 0) {
    std::fprintf(stderr, "soak[fleet]: FAIL — no backend was killed\n");
    pass = false;
  }
  if (respawns == 0) {
    std::fprintf(stderr, "soak[fleet]: FAIL — no respawn observed\n");
    pass = false;
  }
  if (failovers == 0) {
    std::fprintf(stderr, "soak[fleet]: FAIL — no failover observed\n");
    pass = false;
  }

  if (!cfg.json_path.empty()) {
    std::vector<bench::JsonRecord> records;
    const auto add = [&](const char* metric, double value) {
      records.push_back({"bench_soak", "soak",
                         static_cast<std::size_t>(cfg.backends), metric,
                         value});
    };
    add("fleet_qps_healthy", healthy.qps);
    add("fleet_p50_ms_healthy", healthy.p50_ms);
    add("fleet_p99_ms_healthy", healthy.p99_ms);
    add("fleet_qps_degraded", degraded.qps);
    add("fleet_p50_ms_degraded", degraded.p50_ms);
    add("fleet_p99_ms_degraded", degraded.p99_ms);
    add("fleet_kill9_count", kills.load());
    add("fleet_respawns", static_cast<double>(respawns));
    add("fleet_failovers", static_cast<double>(failovers));
    bench::write_bench_json(cfg.json_path, records);
    std::fprintf(stderr, "soak[fleet]: wrote %s\n", cfg.json_path.c_str());
  }

  std::printf("soak: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"server", "workers", "chaos", "requests", "seed", "timeout-s",
       "failpoints", "fleet", "backends", "kill-every-ms", "json"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::string server;
  FleetConfig fleet_cfg;
  int workers = 8, chaos = 3, requests = 25;
  std::uint64_t seed = 1;
  std::string server_failpoints;
  try {
    server = args.get("server");
    if (server.empty()) throw std::invalid_argument("--server=PATH is required");
    workers = static_cast<int>(args.get_int("workers", 8, 1, 256));
    chaos = static_cast<int>(args.get_int("chaos", 3, 0, 256));
    requests = static_cast<int>(args.get_int("requests", 25, 1, 10000));
    seed = static_cast<std::uint64_t>(args.get_int("seed", 1, 0));
    server_failpoints = args.get("failpoints", kServerFailpoints);
    fleet_cfg.fleet_binary = args.get("fleet");
    fleet_cfg.backends = static_cast<int>(args.get_int("backends", 3, 2, 16));
    fleet_cfg.kill_every_ms = args.get_double("kill-every-ms", 400);
    fleet_cfg.json_path = args.get("json");
    if (!fleet_cfg.json_path.empty() && fleet_cfg.fleet_binary.empty())
      throw std::invalid_argument("--json is only emitted in --fleet mode");
    // A wedged soak must die loudly, not hang CI.
    ::alarm(static_cast<unsigned>(args.get_int("timeout-s", 180, 1, 3600)));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  try {
    // ---- fixture + request plan (shared with workers through fork) ----
    const ResponseMatrix rm = soak_matrix();
    const SameDifferentDictionary sd = SameDifferentDictionary::build(
        rm, std::vector<ResponseId>(rm.num_tests(), 0));
    const FullDictionary full = FullDictionary::build(rm);

    char dir_template[] = "/tmp/sddict_soakXXXXXX";
    if (::mkdtemp(dir_template) == nullptr)
      throw std::runtime_error(std::string("mkdtemp: ") + std::strerror(errno));
    const std::string dir = dir_template;
    const std::string store_path = dir + "/soak.store";
    SignatureStore::build(sd).write_file(store_path);

    std::vector<std::vector<std::string>> frames(
        static_cast<std::size_t>(workers));
    std::vector<std::string> flat;
    for (int w = 0; w < workers; ++w)
      for (int i = 0; i < requests; ++i) {
        frames[static_cast<std::size_t>(w)].push_back(
            frame_for(full, rm, planned_fault(rm, seed, w, i)));
        flat.push_back(frames[static_cast<std::size_t>(w)].back());
      }

    // ---- pass 1: the serial stdio reference through the same binary ----
    const std::vector<std::string> reference =
        stdio_reference(server, store_path, flat);
    std::fprintf(stderr, "soak: stdio reference captured (%zu replies)\n",
                 reference.size());

    if (!fleet_cfg.fleet_binary.empty()) {
      fleet_cfg.server_binary = server;
      fleet_cfg.backend_failpoints = server_failpoints;
      fleet_cfg.workers = workers;
      fleet_cfg.chaos = chaos;
      fleet_cfg.requests = requests;
      fleet_cfg.seed = seed;
      return run_fleet(fleet_cfg, dir, rm, full, sd, frames, reference);
    }

    // ---- pass 2: TCP server under tiny limits + injected faults ----
    ChildProc srv = spawn(
        {server, "--store=" + store_path, "--tcp=0", "--threads=2", "--batch=4",
         "--cache=64", "--max-inflight=4", "--pending=6", "--session-inflight=4",
         "--busy-retry-ms=2", "--idle-timeout-ms=2000", "--frame-timeout-ms=300",
         "--write-timeout-ms=5000"},
        /*stdin=*/false, /*stdout=*/false, /*stderr=*/true,
        server_failpoints.c_str());
    int port = -1;
    std::string startup;
    for (int i = 0; i < 50 && port < 0; ++i) {
      const std::string line = read_line_fd(srv.stderr_fd);
      if (line.empty()) break;
      startup += line + "\n";
      const std::size_t at = line.find("listening on tcp ");
      if (at != std::string::npos) {
        // "listening on tcp 127.0.0.1:38259 (kernels: ...)" — the port is
        // the host:port token's suffix, not the line's last colon.
        std::string endpoint = line.substr(at + 17);
        endpoint = endpoint.substr(0, endpoint.find(' '));
        const std::size_t colon = endpoint.rfind(':');
        if (colon != std::string::npos)
          port = std::atoi(endpoint.c_str() + colon + 1);
      }
    }
    if (port <= 0) {
      std::fprintf(stderr, "soak: server never reported a port:\n%s",
                   startup.c_str());
      ::kill(srv.pid, SIGKILL);
      wait_exit(srv.pid);
      return 1;
    }
    std::fprintf(stderr, "soak: server pid %d on port %d, failpoints: %s\n",
                 static_cast<int>(srv.pid), port, server_failpoints.c_str());

    // ---- fork the fleet ----
    std::vector<pid_t> pids = fork_workers(dir, workers, chaos, port, requests,
                                           frames);
    int child_failures = 0;
    for (const pid_t pid : pids)
      if (wait_exit(pid) != 0) ++child_failures;

    // ---- final stats probe, then clean shutdown ----
    std::uint64_t busy_shed = 0;
    {
      net::Client probe = net::Client::connect_tcp("127.0.0.1", port, 30);
      const std::string line = probe.command_line("stats");
      const std::size_t at = line.find(" busy_shed=");
      if (at != std::string::npos)
        busy_shed = std::strtoull(line.c_str() + at + 11, nullptr, 10);
      std::fprintf(stderr, "soak: %s\n", line.c_str());
    }
    ::kill(srv.pid, SIGTERM);
    const std::string drained = read_to_eof(srv.stderr_fd);
    ::close(srv.stderr_fd);
    const int server_rc = wait_exit(srv.pid);
    std::fprintf(stderr, "%s", drained.c_str());

    // ---- diff worker records against the stdio reference ----
    const DiffTally t = diff_worker_records(dir, workers, requests, reference);
    child_failures += t.incomplete;

    const std::size_t total =
        static_cast<std::size_t>(workers) * static_cast<std::size_t>(requests);
    std::printf(
        "soak: workers=%d chaos=%d requests=%zu ok=%zu busy=%zu "
        "mismatches=%zu fails=%zu child_failures=%d busy_shed=%llu "
        "server_exit=%d\n",
        workers, chaos, total, t.ok, t.busy, t.mismatches, t.fails,
        child_failures, static_cast<unsigned long long>(busy_shed), server_rc);

    bool pass = t.mismatches == 0 && t.fails == 0 && child_failures == 0 &&
                server_rc == 0 && t.ok + t.busy == total;
    if (busy_shed == 0) {
      std::fprintf(stderr, "soak: FAIL — no load shedding observed\n");
      pass = false;
    }
    if (t.ok == 0) {
      std::fprintf(stderr, "soak: FAIL — no successful rankings verified\n");
      pass = false;
    }
    std::printf("soak: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_soak: %s\n", e.what());
    return 1;
  }
}
