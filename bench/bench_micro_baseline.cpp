// Microbenchmarks: the inner loops of the paper's Procedures 1 and 2.
#include <benchmark/benchmark.h>

#include <numeric>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "dict/partition.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/rng.h"

namespace sddict {
namespace {

struct Setup {
  Netlist nl;
  FaultList faults;
  TestSet tests{0};
  ResponseMatrix rm;
};

const Setup& setup() {
  static Setup* s = [] {
    auto* out = new Setup{full_scan(load_benchmark("s953")), {}, TestSet{0}, {}};
    out->faults = collapsed_fault_list(out->nl).collapsed;
    out->tests = TestSet(out->nl.num_inputs());
    Rng rng(1);
    out->tests.add_random(200, rng);
    out->rm = build_response_matrix(out->nl, out->faults, out->tests);
    return out;
  }();
  return *s;
}

void BM_CandidateDist(benchmark::State& state) {
  const Setup& s = setup();
  Partition part(s.rm.num_faults());
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(candidate_dist(s.rm, t, part));
    t = (t + 1) % s.rm.num_tests();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.rm.num_faults()));
}
BENCHMARK(BM_CandidateDist);

void BM_Procedure1SinglePass(benchmark::State& state) {
  const Setup& s = setup();
  std::vector<std::size_t> order(s.rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        procedure1_single(s.rm, order, 10).indistinguished_pairs);
  }
}
BENCHMARK(BM_Procedure1SinglePass);

void BM_Procedure2Sweep(benchmark::State& state) {
  const Setup& s = setup();
  std::vector<std::size_t> order(s.rm.num_tests());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto p1 = procedure1_single(s.rm, order, 10);
  Procedure2Config cfg;
  cfg.max_sweeps = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_procedure2(s.rm, p1.baselines, cfg).indistinguished_pairs);
  }
}
BENCHMARK(BM_Procedure2Sweep);

void BM_CountIndistinguished(benchmark::State& state) {
  const Setup& s = setup();
  const std::vector<ResponseId> baselines(s.rm.num_tests(), 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(count_indistinguished(s.rm, baselines));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.rm.num_faults()) *
                          static_cast<std::int64_t>(s.rm.num_tests()));
}
BENCHMARK(BM_CountIndistinguished);

}  // namespace
}  // namespace sddict

BENCHMARK_MAIN();
