// Microbenchmarks: logic-simulation and fault-simulation throughput of the
// PPSFP engine across circuit sizes.
#include <benchmark/benchmark.h>

#include "bmcirc/registry.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "sim/faultsim.h"
#include "sim/logicsim.h"
#include "sim/response.h"
#include "util/rng.h"

namespace sddict {
namespace {

const Netlist& circuit_for(int idx) {
  static const std::vector<std::string> names = {"s298", "s953", "s5378"};
  static std::vector<Netlist> cache;
  if (cache.empty())
    for (const auto& n : names) cache.push_back(full_scan(load_benchmark(n)));
  return cache[static_cast<std::size_t>(idx)];
}

void BM_GoodSimBatch(benchmark::State& state) {
  const Netlist& nl = circuit_for(static_cast<int>(state.range(0)));
  BatchSimulator sim(nl);
  Rng rng(1);
  std::vector<std::uint64_t> words(nl.num_inputs());
  for (auto& w : words) w = rng.next();
  for (auto _ : state) {
    sim.simulate(words);
    benchmark::DoNotOptimize(sim.values().data());
    words[0] = rng.next();  // defeat caching of identical batches
  }
  // 64 patterns per batch.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["gates"] = static_cast<double>(nl.num_gates());
}
BENCHMARK(BM_GoodSimBatch)->Arg(0)->Arg(1)->Arg(2);

void BM_FaultSimBatch(benchmark::State& state) {
  const Netlist& nl = circuit_for(static_cast<int>(state.range(0)));
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  FaultSimulator fsim(nl);
  Rng rng(2);
  std::vector<std::uint64_t> words(nl.num_inputs());
  for (auto& w : words) w = rng.next();
  fsim.load_batch(words, 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.detect_word(faults[i]));
    i = (i + 1) % faults.size();
  }
  // One fault against 64 patterns per iteration.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK(BM_FaultSimBatch)->Arg(0)->Arg(1)->Arg(2);

void BM_BuildResponseMatrix(benchmark::State& state) {
  const Netlist& nl = circuit_for(static_cast<int>(state.range(0)));
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  TestSet tests(nl.num_inputs());
  Rng rng(3);
  tests.add_random(64, rng);
  for (auto _ : state) {
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
    benchmark::DoNotOptimize(rm.num_distinct(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(faults.size()) * 64);
}
BENCHMARK(BM_BuildResponseMatrix)->Arg(0)->Arg(1);

}  // namespace
}  // namespace sddict

BENCHMARK_MAIN();
