// Bridging-defect diagnosis with stuck-at dictionaries (the use case of the
// paper's reference [7]): inject wired-AND/OR bridges, diagnose with each
// stuck-at dictionary type, and score a diagnosis as successful when a
// top-ranked candidate sits on one of the bridged nets. Higher-resolution
// dictionaries should localize more bridges with fewer candidates.
//
//   $ ./bench_bridging [--circuits=...] [--bridges=40] [--top=10] [--seed=1]
#include <algorithm>
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "diag/observe.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/bridge.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "tgen/diagset.h"
#include "util/cli.h"
#include "util/log.h"

using namespace sddict;

namespace {

bool hits_bridge(const Netlist& nl, const FaultList& faults,
                 const std::vector<DiagnosisMatch>& ranked, std::size_t top,
                 const BridgingFault& br) {
  const std::size_t limit = std::min(top, ranked.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const StuckFault& f = faults[ranked[i].fault];
    // A candidate "sits on" the bridge when its site gate is one of the
    // bridged nets or a direct consumer pin of one of them.
    if (f.gate == br.a || f.gate == br.b) return true;
    if (!f.is_output_fault()) {
      const GateId driver = nl.gate(f.gate).fanin[static_cast<std::size_t>(f.pin)];
      if (driver == br.a || driver == br.b) return true;
    }
  }
  return false;
}

}  // namespace

int usage() {
  std::fprintf(stderr,
               "usage: bench_bridging [--circuits=s298,...] [--bridges=N] "
               "[--top=N] [--seed=N]\n");
  return 1;
}

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown =
      args.unknown_flags({"circuits", "bridges", "top", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_bridges = 0;
  std::size_t top = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s344"};
    num_bridges = args.get_int("bridges", 40, 1, 1 << 20);
    top = args.get_int("top", 10, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Bridging-defect diagnosis via stuck-at dictionaries "
              "(%zu bridges per circuit, top-%zu candidates)\n\n",
              num_bridges, top);
  std::printf("%-8s %-15s %18s\n", "circuit", "dictionary",
              "localization (%)");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    DiagSetOptions dopts;
    dopts.seed = seed;
    const TestSet tests = generate_diagnostic(nl, faults, dopts).tests;
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    const auto full = FullDictionary::build(rm);
    const auto pf = PassFailDictionary::build(rm);
    BaselineSelectionConfig cfg;
    cfg.calls1 = 10;
    cfg.seed = seed;
    cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p1 = run_procedure1(rm, cfg);
    Procedure2Config p2cfg;
    p2cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p2 = run_procedure2(rm, p1.baselines, p2cfg);
    const auto sd = SameDifferentDictionary::build(rm, p2.baselines);

    Rng rng(seed + 5);
    const auto bridges = sample_bridges(nl, num_bridges, rng);
    std::size_t hit_full = 0, hit_pf = 0, hit_sd = 0, active = 0;
    for (const auto& br : bridges) {
      const Netlist bad = inject_bridge(nl, br);
      const auto observed = observe_defective_netlist(nl, bad, tests, rm);
      bool fails = false;
      for (ResponseId id : observed) fails |= id != 0;
      if (!fails) continue;  // bridge never excited by this test set
      ++active;
      hit_full += hits_bridge(nl, faults, full.diagnose(observed, top), top, br);
      hit_pf += hits_bridge(
          nl, faults, pf.diagnose(pf.encode(observed), top), top, br);
      hit_sd += hits_bridge(
          nl, faults, sd.diagnose(sd.encode(observed), top), top, br);
    }
    if (active == 0) {
      std::printf("%-8s (no bridge excited by the test set)\n\n", name.c_str());
      continue;
    }
    const double denom = static_cast<double>(active);
    std::printf("%-8s %-15s %18.1f\n", name.c_str(), "full",
                100.0 * static_cast<double>(hit_full) / denom);
    std::printf("%-8s %-15s %18.1f\n", name.c_str(), "pass/fail",
                100.0 * static_cast<double>(hit_pf) / denom);
    std::printf("%-8s %-15s %18.1f\n", name.c_str(), "same/different",
                100.0 * static_cast<double>(hit_sd) / denom);
    std::printf("%-8s (%zu of %zu bridges excited)\n\n", name.c_str(), active,
                bridges.size());
  }
  return 0;
}
