// Ablation: more than one baseline per test — the extension the paper
// leaves open in Section 2. Sweeps the per-test baseline count r and
// reports resolution vs size against the r=1 same/different dictionary,
// the pass/fail dictionary, and the full-dictionary floor.
//
//   $ ./bench_ablation_multibaseline [--circuits=...] [--tests=150] [--seed=1]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/multibaseline.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr, "usage: bench_ablation_multibaseline [--circuits=s298,...] [--tests=N] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "tests", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s344", "s526"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Ablation: baselines per test (paper extension; %zu random "
              "tests per circuit)\n\n", num_tests);
  std::printf("%-8s %4s %15s %14s\n", "circuit", "r", "indistinguished",
              "size (bits)");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(num_tests, rng);
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    const auto pf = PassFailDictionary::build(rm);
    const std::uint64_t floor =
        FullDictionary::build(rm).indistinguished_pairs();
    std::printf("%-8s %4s %15llu %14llu  (pass/fail)\n", name.c_str(), "-",
                (unsigned long long)pf.indistinguished_pairs(),
                (unsigned long long)pf.size_bits());

    for (std::size_t rank : {1u, 2u, 3u, 4u}) {
      BaselineSelectionConfig cfg;
      cfg.calls1 = 10;
      cfg.seed = seed;
      cfg.target_indistinguished = floor;
      const MultiBaselineSelection sel = run_multi_baseline(rm, rank, cfg);
      const auto dict = MultiBaselineDictionary::build(rm, sel.baselines);
      if (dict.indistinguished_pairs() != sel.indistinguished_pairs) {
        std::fprintf(stderr, "BUG: selection/dictionary disagree on %s r=%zu\n",
                     name.c_str(), rank);
        return 1;
      }
      std::printf("%-8s %4zu %15llu %14llu\n", name.c_str(), rank,
                  (unsigned long long)dict.indistinguished_pairs(),
                  (unsigned long long)dict.size_bits());
    }
    std::printf("%-8s %4s %15llu %14s  (full-dictionary floor)\n\n",
                name.c_str(), "-", (unsigned long long)floor, "-");
  }
  return 0;
}
