// Session-diagnoser bench (ISSUE 9 acceptance harness): multi-fault
// diagnostic resolution and cover-search cost on a real benchmark
// circuit.
//
// Workload: two-fault composite observations (fault a's response wherever
// it deviates from fault-free, fault b's elsewhere) repeated over `runs`
// noisy test-set applications per session — the retest flow the session
// subsystem exists for. Per session the driver measures the evidence
// aggregation + branch-and-bound ambiguity-group search and, as the
// baseline, the anytime greedy path alone (a pre-cancelled budget).
//
// Built-in self-checks (the run FAILS with exit 1 on any violation):
//
//   1. identity gate — a clean single-run session's single-fault block is
//      bit-identical to diagnose_observed() on the same observation;
//   2. cover soundness — on a full-kind store the injected pair itself
//      covers every consensus failure, so every completed search must
//      prove min_cover <= 2 with nothing uncovered, and every reported
//      group must actually cover the coverable consensus failures;
//   3. anytime soundness — the greedy incumbent returned under a
//      cancelled budget is a valid (possibly non-minimal) cover.
//
// Headline metrics: pair_recovered_rate (the injected pair appears among
// the ranked ambiguity groups), mean_groups (ambiguity left), and the
// per-session costs bb_ms_per_session / greedy_ms_per_session.
//
//   $ ./bench_session [--circuit=s1423] [--seed=1] [--patterns=96]
//       [--sessions=48] [--runs=3] [--noise=2] [--json=BENCH_session.json]
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "bmcirc/registry.h"
#include "diag/engine.h"
#include "dict/full_dict.h"
#include "fault/collapse.h"
#include "json_writer.h"
#include "netlist/transform.h"
#include "session/engine.h"
#include "session/evidence.h"
#include "sim/testset.h"
#include "store/signature_store.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_session [--circuit=s1423] [--seed=1]\n"
               "  [--patterns=96] [--sessions=48] [--runs=3] [--noise=2]\n"
               "  [--json=FILE]\n");
  return 1;
}

bool same_matches(const std::vector<DiagnosisMatch>& a,
                  const std::vector<DiagnosisMatch>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].fault != b[i].fault || a[i].mismatches != b[i].mismatches)
      return false;
  return true;
}

bool same_diagnosis(const EngineDiagnosis& a, const EngineDiagnosis& b) {
  return a.outcome == b.outcome && a.best_mismatches == b.best_mismatches &&
         a.margin == b.margin && a.effective_tests == b.effective_tests &&
         a.dont_care_tests == b.dont_care_tests &&
         a.unknown_tests == b.unknown_tests && a.completed == b.completed &&
         a.cover == b.cover && a.uncovered_failures == b.uncovered_failures &&
         same_matches(a.matches, b.matches);
}

// Does `group` cover every consensus failure some modeled fault detects?
bool covers_consensus(const SessionEngine& eng,
                      const std::vector<Observed>& consensus,
                      const std::vector<FaultId>& group) {
  for (std::size_t t = 0; t < consensus.size(); ++t) {
    if (consensus[t].dont_care() || consensus[t].value == 0) continue;
    bool covered = false;
    for (const FaultId g : group)
      if (eng.detects(g, t)) {
        covered = true;
        break;
      }
    if (covered) continue;
    for (FaultId f = 0; f < eng.num_faults(); ++f)
      if (eng.detects(f, t)) return false;  // detectable yet uncovered
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"circuit", "seed", "patterns", "sessions", "runs", "noise", "json"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::string circuit;
  std::uint64_t seed = 1;
  std::size_t patterns = 96, num_sessions = 48, runs = 3, noise_pct = 2;
  try {
    circuit = args.get("circuit", "s1423");
    seed = static_cast<std::uint64_t>(args.get_int("seed", 1, 0));
    patterns =
        static_cast<std::size_t>(args.get_int("patterns", 96, 4, 1 << 16));
    num_sessions =
        static_cast<std::size_t>(args.get_int("sessions", 48, 1, 1 << 16));
    runs = static_cast<std::size_t>(args.get_int("runs", 3, 1, 1024));
    noise_pct = static_cast<std::size_t>(args.get_int("noise", 2, 0, 100));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }
  const std::string json_path = args.get("json");

  std::vector<bench::JsonRecord> records;
  const auto rec = [&](const std::string& metric, double value) {
    records.push_back({"bench_session", circuit, runs, metric, value});
  };

  Netlist nl = load_benchmark(circuit);
  if (nl.has_dffs()) nl = full_scan(nl);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  Rng rng(seed);
  TestSet tests(nl.num_inputs());
  tests.add_random(patterns, rng);
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests, {});
  const FullDictionary full = FullDictionary::build(rm);
  const auto store = std::make_shared<const SignatureStore>(
      SignatureStore::build(full));
  const SessionEngine engine(store);
  const std::size_t n = rm.num_tests();
  std::printf("%s: %zu collapsed faults, %zu patterns, %zu sessions x %zu "
              "runs, %zu%% noise\n",
              circuit.c_str(), faults.size(), patterns, num_sessions, runs,
              noise_pct);

  // --- self-check 1: single-run identity gate -------------------------
  for (std::size_t q = 0; q < 16; ++q) {
    const auto f = static_cast<FaultId>(rng.below(faults.size()));
    std::vector<Observed> obs(n);
    for (std::size_t t = 0; t < n; ++t) obs[t] = Observed::of(full.entry(f, t));
    SessionRun run;
    run.observed = obs;
    const SessionDiagnosis d = engine.diagnose(aggregate_runs({run}));
    if (!same_diagnosis(d.single, diagnose_observed(*store, obs))) {
      std::fprintf(stderr,
                   "FAIL: single-run session diverges from "
                   "diagnose_observed() on fault %u\n",
                   f);
      return 1;
    }
  }
  std::printf("identity gate: single-run session == diagnose_observed()\n");

  // --- the session workload -------------------------------------------
  // Only faults the test set detects at all: an undetected fault has an
  // all-fault-free response and contributes nothing to a composite.
  std::vector<FaultId> detected;
  for (FaultId f = 0; f < faults.size(); ++f)
    for (std::size_t t = 0; t < n; ++t)
      if (full.entry(f, t) != 0) {
        detected.push_back(f);
        break;
      }
  if (detected.size() < 2) {
    std::fprintf(stderr, "FAIL: test set detects < 2 faults\n");
    return 1;
  }
  struct Session {
    FaultId a = 0, b = 0;
    std::vector<SessionRun> runs;
  };
  std::vector<Session> work(num_sessions);
  for (Session& s : work) {
    s.a = detected[rng.below(detected.size())];
    do {
      s.b = detected[rng.below(detected.size())];
    } while (s.b == s.a);
    std::vector<Observed> clean(n);
    for (std::size_t t = 0; t < n; ++t) {
      const ResponseId ra = full.entry(s.a, t);
      clean[t] = Observed::of(ra != 0 ? ra : full.entry(s.b, t));
    }
    for (std::size_t r = 0; r < runs; ++r) {
      SessionRun run;
      run.observed = clean;
      for (std::size_t t = 0; t < n; ++t)
        if (rng.below(100) < noise_pct)
          run.observed[t] =
              (rng.below(2) == 0) ? Observed::missing() : Observed::unstable();
      s.runs.push_back(std::move(run));
    }
  }

  std::size_t pair_recovered = 0, singleton = 0, truncated = 0;
  std::size_t total_groups = 0;
  double confidence_sum = 0;
  double aggregate_s = 0, bb_s = 0, greedy_s = 0;
  for (const Session& s : work) {
    Timer ta;
    const SessionEvidence ev = aggregate_runs(s.runs);
    aggregate_s += ta.seconds();

    // Wider group cap than the serving default: the resolution metric
    // asks whether the truth is among the enumerated covers at all.
    SessionOptions bb_opt;
    bb_opt.max_groups = 64;
    Timer tb;
    const SessionDiagnosis d = engine.diagnose(ev, bb_opt);
    bb_s += tb.seconds();

    // --- self-check 2: cover soundness on a full-kind store ---
    const std::vector<Observed> consensus = ev.consensus();
    if (d.failing_tests == 0) continue;  // noise erased every failure
    if (!d.completed || !d.cover_minimal || d.min_cover > 2 ||
        d.uncovered_failures != 0) {
      std::fprintf(stderr,
                   "FAIL: pair (%u,%u) not proven covered: min_cover=%zu "
                   "minimal=%d uncovered=%zu completed=%d\n",
                   s.a, s.b, d.min_cover, d.cover_minimal ? 1 : 0,
                   d.uncovered_failures, d.completed ? 1 : 0);
      return 1;
    }
    for (const AmbiguityGroup& g : d.groups)
      if (!covers_consensus(engine, consensus, g.faults)) {
        std::fprintf(stderr, "FAIL: reported group does not cover\n");
        return 1;
      }

    SessionOptions greedy_opt;
    greedy_opt.budget.cancel.cancel();
    Timer tg;
    const SessionDiagnosis g = engine.diagnose(ev, greedy_opt);
    greedy_s += tg.seconds();
    // --- self-check 3: the anytime incumbent is a valid cover ---
    if (g.uncovered_failures != 0 || g.groups.empty() ||
        !covers_consensus(engine, consensus, g.groups.front().faults)) {
      std::fprintf(stderr, "FAIL: cancelled-budget incumbent not a cover\n");
      return 1;
    }

    std::vector<FaultId> pair = {std::min(s.a, s.b), std::max(s.a, s.b)};
    bool found = false;
    for (const AmbiguityGroup& grp : d.groups)
      if (grp.faults == pair ||
          (d.min_cover == 1 &&
           (grp.faults == std::vector<FaultId>{s.a} ||
            grp.faults == std::vector<FaultId>{s.b})))
        found = true;
    pair_recovered += found ? 1 : 0;
    singleton += d.min_cover <= 1 ? 1 : 0;
    truncated += d.groups_truncated ? 1 : 0;
    total_groups += d.groups.size();
    if (!d.groups.empty()) confidence_sum += d.groups.front().confidence;
  }
  std::printf("cover soundness + anytime soundness: ok\n");

  const double ns = static_cast<double>(num_sessions);
  rec("pair_recovered_rate", static_cast<double>(pair_recovered) / ns);
  rec("singleton_cover_rate", static_cast<double>(singleton) / ns);
  rec("truncated_rate", static_cast<double>(truncated) / ns);
  rec("mean_groups", static_cast<double>(total_groups) / ns);
  rec("mean_top_confidence", confidence_sum / ns);
  rec("aggregate_ms_per_session", aggregate_s * 1000 / ns);
  rec("bb_ms_per_session", bb_s * 1000 / ns);
  rec("greedy_ms_per_session", greedy_s * 1000 / ns);

  std::printf(
      "pair recovered %zu/%zu  mean groups %.2f  top confidence %.4f\n"
      "aggregate %.3f ms  b&b %.3f ms  greedy %.3f ms  per session\n",
      pair_recovered, num_sessions, static_cast<double>(total_groups) / ns,
      confidence_sum / ns, aggregate_s * 1000 / ns, bb_s * 1000 / ns,
      greedy_s * 1000 / ns);

  if (!json_path.empty()) {
    bench::write_bench_json(json_path, records);
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}
