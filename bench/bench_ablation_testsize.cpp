// Ablation: test-set size vs the same/different advantage (paper Section 4:
// "the difference is higher when the test set size is higher" — more tests
// give baseline selection more opportunities). Sweeps the number of random
// tests on fixed circuits and reports pass/fail vs same/different
// resolution and the gap between them.
//
//   $ ./bench_ablation_testsize [--circuits=s298,s420] [--seed=1]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr, "usage: bench_ablation_testsize [--circuits=s298,...] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s420"};
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Ablation: resolution vs test-set size (random tests)\n\n");
  std::printf("%-8s %6s %12s %12s %12s %16s\n", "circuit", "|T|", "full",
              "p/f", "s/d", "p/f - s/d gap");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;

    for (std::size_t k : {25u, 50u, 100u, 200u, 400u, 800u}) {
      TestSet tests(nl.num_inputs());
      Rng rng(seed);  // same seed: larger sets are supersets in distribution
      tests.add_random(k, rng);
      const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
      const auto full = FullDictionary::build(rm).indistinguished_pairs();
      const auto pf = PassFailDictionary::build(rm).indistinguished_pairs();
      BaselineSelectionConfig cfg;
      cfg.calls1 = 10;
      cfg.seed = seed;
      cfg.target_indistinguished = full;
      const auto sd = run_procedure1(rm, cfg).indistinguished_pairs;
      std::printf("%-8s %6zu %12llu %12llu %12llu %16lld\n", name.c_str(), k,
                  (unsigned long long)full, (unsigned long long)pf,
                  (unsigned long long)sd,
                  (long long)(pf - sd));
    }
    std::printf("\n");
  }
  return 0;
}
