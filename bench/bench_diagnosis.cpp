// End-to-end diagnosis quality: inject defects (modeled single faults and
// unmodeled double faults), capture tester observations, and diagnose with
// each dictionary type. Reports average candidate-list sizes and how often
// the true site is in the top candidate set — the operational meaning of
// "diagnostic resolution" the paper's dictionaries trade storage for.
//
//   $ ./bench_diagnosis [--circuits=...] [--defects=50] [--seed=1]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/procedure2.h"
#include "diag/observe.h"
#include "diag/report.h"
#include "diag/twophase.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "tgen/diagset.h"
#include "util/cli.h"
#include "util/log.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diagnosis [--circuits=s298,...] [--defects=N] "
               "[--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "defects", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_defects = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s344", "s526"};
    num_defects = args.get_int("defects", 50, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Diagnosis quality over %zu injected single-fault defects per "
              "circuit (diagnostic test sets)\n\n", num_defects);
  std::printf("%-8s %-15s %17s %15s %17s\n", "circuit", "dictionary",
              "avg candidates", "hit rate (%)", "phase-1 sims");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    DiagSetOptions dopts;
    dopts.seed = seed;
    const TestSet tests = generate_diagnostic(nl, faults, dopts).tests;
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    const auto full = FullDictionary::build(rm);
    const auto pf = PassFailDictionary::build(rm);
    BaselineSelectionConfig cfg;
    cfg.calls1 = 10;
    cfg.seed = seed;
    cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p1 = run_procedure1(rm, cfg);
    Procedure2Config p2cfg;
    p2cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p2 = run_procedure2(rm, p1.baselines, p2cfg);
    const auto sd = SameDifferentDictionary::build(rm, p2.baselines);

    double cand[3] = {0, 0, 0};
    std::size_t hits[3] = {0, 0, 0};
    double sims[3] = {0, 0, 0};
    Rng rng(seed + 99);
    for (std::size_t d = 0; d < num_defects; ++d) {
      const FaultId truth = static_cast<FaultId>(rng.below(faults.size()));
      const auto observed =
          observe_defect(nl, tests, rm, {to_injection(faults[truth])});
      const auto cmp = compare_dictionaries(full, pf, sd, observed, truth);
      const DictionaryDiagnosis* ds[3] = {&cmp.full, &cmp.pass_fail,
                                          &cmp.same_different};
      for (int i = 0; i < 3; ++i) {
        cand[i] += static_cast<double>(ds[i]->tied_candidates);
        hits[i] += ds[i]->true_fault_rank >= 1 &&
                           ds[i]->true_fault_rank <= ds[i]->tied_candidates
                       ? 1
                       : 0;
      }
      sims[1] += static_cast<double>(
          two_phase_with_passfail(pf, rm, observed).simulations_run);
      sims[2] += static_cast<double>(
          two_phase_with_samediff(sd, rm, observed).simulations_run);
    }

    const char* labels[3] = {"full", "pass/fail", "same/different"};
    for (int i = 0; i < 3; ++i) {
      char simbuf[24];
      if (i == 0)
        std::snprintf(simbuf, sizeof simbuf, "%17s", "-");
      else
        std::snprintf(simbuf, sizeof simbuf, "%17.1f",
                      sims[i] / static_cast<double>(num_defects));
      std::printf("%-8s %-15s %17.2f %15.1f %s\n", name.c_str(), labels[i],
                  cand[i] / static_cast<double>(num_defects),
                  100.0 * static_cast<double>(hits[i]) /
                      static_cast<double>(num_defects),
                  simbuf);
    }
    std::printf("\n");
  }
  std::printf("candidates = faults tied at the best match (smaller is "
              "better); hit = true fault inside that set;\nphase-1 sims = "
              "full-response simulations a two-phase flow runs (out of the "
              "whole fault list).\n");
  return 0;
}
