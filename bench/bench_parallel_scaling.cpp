// Thread-scaling of the dictionary-construction pipeline: fault simulation
// (build_response_matrix) and Procedure-1 restarts (run_procedure1) at
// 1/2/4/8 threads, with a built-in bit-identity check of every multi-thread
// result against the single-thread reference — the parallel pipeline
// guarantees identical output at every thread count, and this bench fails
// (exit 1) if that ever breaks.
//
//   $ ./bench_parallel_scaling                         # s1423,s5378,s9234
//   $ ./bench_parallel_scaling --circuits=s9234 --tests=200 --calls1=50
//   $ ./bench_parallel_scaling --threads=1,2,4,8,16 --json=BENCH_scaling.json
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "fault/collapse.h"
#include "json_writer.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/threadpool.h"
#include "util/timer.h"

using namespace sddict;

namespace {

bool same_matrix(const ResponseMatrix& a, const ResponseMatrix& b) {
  if (a.num_faults() != b.num_faults() || a.num_tests() != b.num_tests())
    return false;
  for (std::size_t j = 0; j < a.num_tests(); ++j) {
    if (a.num_distinct(j) != b.num_distinct(j)) return false;
    for (ResponseId id = 0; id < a.num_distinct(j); ++id)
      if (!(a.signature(j, id) == b.signature(j, id))) return false;
  }
  for (FaultId f = 0; f < a.num_faults(); ++f)
    for (std::size_t j = 0; j < a.num_tests(); ++j)
      if (a.response(f, j) != b.response(f, j)) return false;
  return true;
}

bool same_selection(const BaselineSelection& a, const BaselineSelection& b) {
  return a.baselines == b.baselines &&
         a.distinguished_pairs == b.distinguished_pairs &&
         a.indistinguished_pairs == b.indistinguished_pairs &&
         a.calls_used == b.calls_used;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_parallel_scaling [--circuits=s1423,...]\n"
               "  [--tests=N] [--seed=N] [--calls1=N] [--lower=N]\n"
               "  [--threads=1,2,4,8] [--verbose=true] [--json=FILE]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown =
      args.unknown_flags({"circuits", "tests", "seed", "calls1", "lower",
                          "threads", "verbose", "json"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::uint64_t seed = 1;
  std::vector<std::size_t> thread_counts;
  BaselineSelectionConfig bcfg;
  try {
    set_log_level(args.get_bool("verbose", false) ? LogLevel::kDebug
                                                  : LogLevel::kWarn);

    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s1423", "s5378", "s9234"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    seed = static_cast<std::uint64_t>(args.get_int("seed", 1, 0));

    // Strictly parsed: --threads=abc or --threads=0 is an error, not a
    // silently-zero strtoull result.
    for (std::int64_t t : args.get_int_list("threads", 1, 4096))
      thread_counts.push_back(static_cast<std::size_t>(t));
    if (thread_counts.empty()) thread_counts = {1, 2, 4, 8};

    bcfg.lower = args.get_int("lower", 10, 1, 1 << 20);
    bcfg.calls1 = args.get_int("calls1", 20, 1, 1 << 20);
    bcfg.seed = seed;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Parallel dictionary-construction scaling "
              "(%zu random tests, CALLS1=%zu, %zu hardware threads)\n\n",
              num_tests, bcfg.calls1, ThreadPool::default_num_threads());
  std::printf("%-8s %8s %10s %10s %10s %9s %10s\n", "circuit", "threads",
              "sim (s)", "proc1 (s)", "total (s)", "speedup", "identical");

  const std::string json_path = args.get("json");
  std::vector<bench::JsonRecord> records;

  bool all_identical = true;
  for (const auto& name : circuits) {
    if (!is_known_benchmark(name)) {
      std::fprintf(stderr, "skipping unknown circuit '%s'\n", name.c_str());
      continue;
    }
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(num_tests, rng);

    ResponseMatrix reference_rm;
    BaselineSelection reference_sel;
    double base_total = 0;
    for (std::size_t threads : thread_counts) {
      Timer sim_timer;
      ResponseMatrix rm =
          build_response_matrix(nl, faults, tests, {.num_threads = threads});
      const double sim_s = sim_timer.seconds();

      bcfg.num_threads = threads;
      Timer p1_timer;
      BaselineSelection sel = run_procedure1(rm, bcfg);
      const double p1_s = p1_timer.seconds();
      const double total = sim_s + p1_s;

      bool identical = true;
      if (threads == thread_counts.front()) {
        reference_rm = std::move(rm);
        reference_sel = std::move(sel);
        base_total = total;
      } else {
        identical = same_matrix(reference_rm, rm) &&
                    same_selection(reference_sel, sel);
        all_identical = all_identical && identical;
      }
      std::printf("%-8s %8zu %10.3f %10.3f %10.3f %8.2fx %10s\n", name.c_str(),
                  threads, sim_s, p1_s, total,
                  base_total > 0 ? base_total / total : 0.0,
                  identical ? "yes" : "NO");
      std::fflush(stdout);
      records.push_back({"bench_parallel_scaling", name, threads, "sim_s",
                         sim_s});
      records.push_back({"bench_parallel_scaling", name, threads, "proc1_s",
                         p1_s});
      records.push_back({"bench_parallel_scaling", name, threads, "total_s",
                         total});
      records.push_back({"bench_parallel_scaling", name, threads, "speedup",
                         base_total > 0 ? base_total / total : 0.0});
    }
    std::printf("  [%s: %zu faults, %zu tests, %llu indistinguished pairs, "
                "%zu proc1 calls]\n\n",
                name.c_str(), faults.size(), tests.size(),
                (unsigned long long)reference_sel.indistinguished_pairs,
                reference_sel.calls_used);
  }

  if (!json_path.empty()) {
    try {
      bench::write_bench_json(json_path, records);
      std::printf("wrote %zu records to %s\n", records.size(),
                  json_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: some thread count produced a different result\n");
    return 1;
  }
  return 0;
}
