// Microbenchmarks: dictionary construction and partition refinement.
#include <benchmark/benchmark.h>

#include "bmcirc/registry.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/rng.h"

namespace sddict {
namespace {

struct Setup {
  Netlist nl;
  FaultList faults;
  TestSet tests{0};
  ResponseMatrix rm;
};

const Setup& setup() {
  static Setup* s = [] {
    auto* out = new Setup{full_scan(load_benchmark("s953")), {}, TestSet{0}, {}};
    out->faults = collapsed_fault_list(out->nl).collapsed;
    out->tests = TestSet(out->nl.num_inputs());
    Rng rng(1);
    out->tests.add_random(200, rng);
    out->rm = build_response_matrix(out->nl, out->faults, out->tests);
    return out;
  }();
  return *s;
}

void BM_PartitionRefine(benchmark::State& state) {
  const Setup& s = setup();
  for (auto _ : state) {
    Partition part(s.rm.num_faults());
    for (std::size_t t = 0; t < s.rm.num_tests(); ++t)
      part.refine_with(
          [&](std::uint32_t f) { return s.rm.response(f, t); });
    benchmark::DoNotOptimize(part.indistinguished_pairs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.rm.num_tests()) *
                          static_cast<std::int64_t>(s.rm.num_faults()));
}
BENCHMARK(BM_PartitionRefine);

void BM_BuildFullDictionary(benchmark::State& state) {
  const Setup& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(FullDictionary::build(s.rm).indistinguished_pairs());
}
BENCHMARK(BM_BuildFullDictionary);

void BM_BuildPassFailDictionary(benchmark::State& state) {
  const Setup& s = setup();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        PassFailDictionary::build(s.rm).indistinguished_pairs());
}
BENCHMARK(BM_BuildPassFailDictionary);

void BM_BuildSameDifferentDictionary(benchmark::State& state) {
  const Setup& s = setup();
  std::vector<ResponseId> baselines(s.rm.num_tests());
  for (std::size_t t = 0; t < s.rm.num_tests(); ++t)
    baselines[t] = s.rm.num_distinct(t) - 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(SameDifferentDictionary::build(s.rm, baselines)
                                 .indistinguished_pairs());
}
BENCHMARK(BM_BuildSameDifferentDictionary);

void BM_DiagnoseSameDifferent(benchmark::State& state) {
  const Setup& s = setup();
  const auto sd = SameDifferentDictionary::build(
      s.rm, std::vector<ResponseId>(s.rm.num_tests(), 0));
  std::vector<ResponseId> observed(s.rm.num_tests());
  for (std::size_t t = 0; t < s.rm.num_tests(); ++t)
    observed[t] = s.rm.response(42, t);
  const BitVec bits = sd.encode(observed);
  for (auto _ : state) benchmark::DoNotOptimize(sd.diagnose(bits, 10));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(s.rm.num_faults()));
}
BENCHMARK(BM_DiagnoseSameDifferent);

}  // namespace
}  // namespace sddict

BENCHMARK_MAIN();
