// Size/resolution frontier: for each circuit, plots (as table rows) every
// dictionary variant in this library on the storage-vs-resolution plane the
// paper's argument lives on: pass/fail, first-fail (reference [12]-style),
// same/different after Procedures 1+2, multi-baseline r=2, and full.
//
//   $ ./bench_frontier [--circuits=...] [--tests=150] [--seed=1]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/multibaseline.h"
#include "core/procedure2.h"
#include "dict/firstfail_dict.h"
#include "dict/full_dict.h"
#include "dict/multibaseline_dict.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "dict/signature_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_frontier [--circuits=s298,...] [--tests=N] "
               "[--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "tests", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s344", "s526", "s820"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Size/resolution frontier (%zu random tests per circuit)\n\n",
              num_tests);
  std::printf("%-8s %-18s %14s %15s\n", "circuit", "dictionary",
              "size (bits)", "indistinguished");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(num_tests, rng);
    const ResponseMatrix rm = build_response_matrix(
        nl, faults, tests, {.store_diff_outputs = true});

    const auto pf = PassFailDictionary::build(rm);
    const auto ffd = FirstFailDictionary::build(rm);
    const auto full = FullDictionary::build(rm);

    BaselineSelectionConfig cfg;
    cfg.calls1 = 10;
    cfg.seed = seed;
    cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p1 = run_procedure1(rm, cfg);
    Procedure2Config p2cfg;
    p2cfg.target_indistinguished = full.indistinguished_pairs();
    const auto p2 = run_procedure2(rm, p1.baselines, p2cfg);
    const auto sd = SameDifferentDictionary::build(rm, p2.baselines);
    const auto mb2 = MultiBaselineDictionary::build(
        rm, run_multi_baseline(rm, 2, cfg).baselines);

    const auto sig32 = SignatureDictionary::build(nl, faults, tests, 32);

    const struct {
      const char* label;
      std::uint64_t size;
      std::uint64_t indist;
    } rows[] = {
        {"misr-32 [6,19]", sig32.size_bits(), sig32.indistinguished_pairs()},
        {"pass/fail", pf.size_bits(), pf.indistinguished_pairs()},
        {"same/diff (P1+P2)", sd.size_bits(), sd.indistinguished_pairs()},
        {"multi-baseline r=2", mb2.size_bits(), mb2.indistinguished_pairs()},
        {"first-fail [12]", ffd.size_bits(), ffd.indistinguished_pairs()},
        {"full", full.size_bits(), full.indistinguished_pairs()},
    };
    for (const auto& r : rows)
      std::printf("%-8s %-18s %14llu %15llu\n", name.c_str(), r.label,
                  (unsigned long long)r.size, (unsigned long long)r.indist);
    std::printf("\n");
  }
  return 0;
}
