// Regenerates and *checks* the paper's worked example, Tables 1-5: builds
// the example response matrix, runs Procedure 1 and verifies every value
// against the numbers printed in the paper. Exits nonzero on any mismatch,
// so this bench doubles as a golden test of the core algorithms.
//
//   $ ./bench_paper_tables
#include <cstdio>
#include <cstdlib>

#include "core/baseline.h"
#include "dict/full_dict.h"
#include "dict/partition.h"
#include "dict/passfail_dict.h"
#include "dict/samediff_dict.h"
#include "sim/response.h"
#include "util/cli.h"

using namespace sddict;

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  // bench_paper_tables takes no flags; fail loudly on any argument.
  const CliArgs args(argc, argv);
  if (!args.unknown_flags({}).empty() || !args.positional().empty()) {
    std::fprintf(stderr, "usage: bench_paper_tables  (no arguments)\n");
    return 1;
  }

  // Table 1 responses.
  const std::vector<BitVec> ff = {BitVec::from_string("00"),
                                  BitVec::from_string("00")};
  const std::vector<std::vector<BitVec>> faulty = {
      {BitVec::from_string("10"), BitVec::from_string("11")},
      {BitVec::from_string("00"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("10")},
      {BitVec::from_string("01"), BitVec::from_string("00")},
  };
  const ResponseMatrix rm = response_matrix_from_table(ff, faulty);

  std::printf("Table 1 (full dictionary):\n");
  check(FullDictionary::build(rm).indistinguished_pairs() == 0,
        "full dictionary distinguishes all 6 fault pairs");

  std::printf("Table 2 (pass/fail dictionary):\n");
  const PassFailDictionary pf = PassFailDictionary::build(rm);
  check(pf.row(0).to_string() == "11", "row f0 = 1 1");
  check(pf.row(1).to_string() == "01", "row f1 = 0 1");
  check(pf.row(2).to_string() == "11", "row f2 = 1 1");
  check(pf.row(3).to_string() == "10", "row f3 = 1 0");
  check(pf.indistinguished_pairs() == 1, "only (f2,f3) left indistinguished");

  std::printf("Table 4 (selection of z_bl,0):\n");
  Partition part(4);
  const auto dist0 = candidate_dist(rm, 0, part);
  check(dist0[rm.response(1, 0)] == 3, "dist(00) = 3");
  check(dist0[rm.response(0, 0)] == 3, "dist(10) = 3");
  check(dist0[rm.response(2, 0)] == 4, "dist(01) = 4");

  const BaselineSelection sel = procedure1_single(rm, {0, 1}, 10);
  check(sel.baselines[0] == rm.response(2, 0), "z_bl,0 = 01 selected");

  std::printf("Table 5 (selection of z_bl,1):\n");
  part.refine_with([&](std::uint32_t f) {
    return static_cast<std::uint32_t>(rm.response(f, 0) == sel.baselines[0]);
  });
  const auto dist1 = candidate_dist(rm, 1, part);
  check(dist1[rm.response(0, 1)] == 1, "dist(11) = 1");
  check(dist1[rm.response(1, 1)] == 2, "dist(10) = 2");
  check(dist1[0] == 1, "dist(00) = 1");
  check(sel.baselines[1] == rm.response(1, 1), "z_bl,1 = 10 selected");

  std::printf("Table 3 (same/different dictionary):\n");
  const SameDifferentDictionary sd =
      SameDifferentDictionary::build(rm, sel.baselines);
  check(sd.row(0).to_string() == "11", "row f0 = 1 1");
  check(sd.row(1).to_string() == "10", "row f1 = 1 0");
  check(sd.row(2).to_string() == "00", "row f2 = 0 0");
  check(sd.row(3).to_string() == "01", "row f3 = 0 1");
  check(sd.indistinguished_pairs() == 0,
        "same/different dictionary reaches full resolution");
  check(sd.size_bits() == 12, "size = k(n+m) = 2*(4+2) = 12 bits");

  if (failures != 0) {
    std::printf("\n%d mismatches against the paper's example\n", failures);
    return 1;
  }
  std::printf("\nall values match the paper's Tables 1-5\n");
  return 0;
}
