// Ablation: test-response space compaction (paper Section 2: "If test
// response compaction is used, the number of outputs will be significantly
// smaller" — shrinking the baseline storage of the same/different
// dictionary). Sweeps XOR-compactor widths and reports how aliasing trades
// baseline storage against resolution for every dictionary type.
//
//   $ ./bench_ablation_compaction [--circuits=s344] [--tests=150] [--seed=1]
//       [--json=FILE]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "dict/full_dict.h"
#include "dict/passfail_dict.h"
#include "fault/collapse.h"
#include "json_writer.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_ablation_compaction [--circuits=s298,...] "
               "[--tests=N] [--seed=N] [--json=FILE]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown =
      args.unknown_flags({"circuits", "tests", "seed", "json"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::uint64_t seed = 0;
  std::string json_path;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s344", "s526"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
    json_path = args.get("json");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }
  std::vector<bench::JsonRecord> records;

  std::printf("Ablation: XOR response compaction (%zu random tests)\n\n",
              num_tests);
  std::printf("%-8s %8s %12s %12s %12s %14s\n", "circuit", "outputs", "full",
              "p/f", "s/d (P1)", "s/d bits");

  for (const auto& name : circuits) {
    Netlist scan = load_benchmark(name);
    if (scan.has_dffs()) scan = full_scan(scan);
    const std::size_t m = scan.num_outputs();

    for (std::size_t sigs : {m, m / 2, m / 4, std::size_t{4}, std::size_t{1}}) {
      if (sigs == 0 || sigs > m) continue;
      const Netlist nl = sigs == m ? scan : xor_compact_outputs(scan, sigs);
      // Fault universe: the functional core only. Compactor gates ("sig*")
      // are tester-side logic, so their faults are filtered out.
      FaultList faults = collapsed_fault_list(nl).collapsed;
      {
        std::vector<StuckFault> core;
        for (const auto& f : faults)
          if (nl.gate(f.gate).name.rfind("sig", 0) != 0) core.push_back(f);
        faults = FaultList(std::move(core));
      }
      TestSet tests(nl.num_inputs());
      Rng rng(seed);
      tests.add_random(num_tests, rng);
      const ResponseMatrix rm = build_response_matrix(nl, faults, tests);
      const auto full = FullDictionary::build(rm);
      const auto pf = PassFailDictionary::build(rm);
      BaselineSelectionConfig cfg;
      cfg.calls1 = 10;
      cfg.seed = seed;
      cfg.target_indistinguished = full.indistinguished_pairs();
      const auto p1 = run_procedure1(rm, cfg);
      const std::uint64_t sd_bits =
          dictionary_sizes(tests.size(), faults.size(), sigs)
              .same_different_bits;
      std::printf("%-8s %8zu %12llu %12llu %12llu %14llu\n", name.c_str(),
                  sigs, (unsigned long long)full.indistinguished_pairs(),
                  (unsigned long long)pf.indistinguished_pairs(),
                  (unsigned long long)p1.indistinguished_pairs,
                  (unsigned long long)sd_bits);
      const std::string tag = "_sig" + std::to_string(sigs);
      records.push_back({"bench_ablation_compaction", name, 0,
                         "indist_full" + tag,
                         (double)full.indistinguished_pairs()});
      records.push_back({"bench_ablation_compaction", name, 0,
                         "indist_passfail" + tag,
                         (double)pf.indistinguished_pairs()});
      records.push_back({"bench_ablation_compaction", name, 0,
                         "indist_sd_p1" + tag,
                         (double)p1.indistinguished_pairs});
      records.push_back({"bench_ablation_compaction", name, 0,
                         "sd_bits" + tag, (double)sd_bits});
    }
    std::printf("\n");
  }
  std::printf("fewer signature outputs shrink s/d baseline storage but "
              "aliasing raises every dictionary's indistinguished count.\n");
  if (!json_path.empty()) {
    bench::write_bench_json(json_path, records);
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}
