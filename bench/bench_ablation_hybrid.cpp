// Ablation: hybrid baselines — the paper's Section 2 remark that the
// fault-free vector can serve as the baseline for many tests, shrinking the
// baseline storage the same/different dictionary adds over pass/fail.
// Reports how many baselines survive hybridization and the resulting sizes.
//
//   $ ./bench_ablation_hybrid [--circuits=...] [--tests=150] [--seed=1]
#include <cstdio>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "core/hybrid.h"
#include "core/procedure2.h"
#include "dict/dictionary.h"
#include "dict/full_dict.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr, "usage: bench_ablation_hybrid [--circuits=s298,...] [--tests=N] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "tests", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s208", "s298", "s344", "s386", "s526"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Ablation: hybrid baselines (fault-free reuse; %zu random "
              "tests per circuit)\n\n", num_tests);
  std::printf("%-8s %9s %9s %10s %10s %11s %11s\n", "circuit", "baselines",
              "stored", "p/f bits", "s/d bits", "hybrid bits", "indist");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(num_tests, rng);
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    BaselineSelectionConfig cfg;
    cfg.calls1 = 10;
    cfg.seed = seed;
    cfg.target_indistinguished =
        FullDictionary::build(rm).indistinguished_pairs();
    const BaselineSelection p1 = run_procedure1(rm, cfg);
    const HybridResult hyb = hybridize_baselines(rm, p1.baselines);
    const DictionarySizes sizes =
        dictionary_sizes(tests.size(), faults.size(), nl.num_outputs());

    if (hyb.indistinguished_pairs > p1.indistinguished_pairs) {
      std::fprintf(stderr, "BUG: hybridization lost resolution on %s\n",
                   name.c_str());
      return 1;
    }
    std::printf("%-8s %9zu %9zu %10llu %10llu %11llu %11llu\n", name.c_str(),
                tests.size(), hyb.stored_baselines,
                (unsigned long long)sizes.pass_fail_bits,
                (unsigned long long)sizes.same_different_bits,
                (unsigned long long)hyb.size_bits,
                (unsigned long long)hyb.indistinguished_pairs);
  }
  std::printf("\nhybrid bits = k*n + stored*m + k flag bits; resolution is "
              "never worse than the full baseline set.\n");
  return 0;
}
