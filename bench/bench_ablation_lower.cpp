// Ablation: the LOWER early-stop threshold of Procedure 1 (paper Section 3:
// "the highest values of dist(z) are typically found after the first few
// output vectors in Z_j"). For each LOWER value this harness reports the
// achieved resolution and how many candidate baselines the scan actually
// examined (the work a pair-explicit implementation would spend).
//
//   $ ./bench_ablation_lower [--circuits=s298,s344] [--tests=150] [--seed=1]
#include <cstdio>
#include <numeric>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "dict/partition.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"

using namespace sddict;

namespace {

struct LowerRun {
  std::uint64_t indistinguished = 0;
  std::size_t candidates_scanned = 0;
  std::size_t candidates_total = 0;
};

// procedure1_single with scan accounting.
LowerRun run_with_lower(const ResponseMatrix& rm, std::size_t lower) {
  LowerRun res;
  Partition part(rm.num_faults());
  for (std::size_t j = 0; j < rm.num_tests(); ++j) {
    if (part.fully_refined()) break;
    const auto dist = candidate_dist(rm, j, part);
    res.candidates_total += dist.size();
    // Replay the paper's scan, counting examined candidates.
    ResponseId best_id = 0;
    bool have_best = false;
    std::uint64_t best = 0;
    std::size_t low_run = 0;
    std::size_t scanned = 0;
    for (ResponseId z = 0; z < dist.size(); ++z) {
      ++scanned;
      if (!have_best || dist[z] > best) {
        best = dist[z];
        best_id = z;
        have_best = true;
        low_run = 0;
      } else if (dist[z] < best) {
        if (++low_run == lower) break;
      }
    }
    res.candidates_scanned += scanned;
    part.refine_with([&](std::uint32_t f) {
      return static_cast<std::uint32_t>(rm.response(f, j) == best_id);
    });
  }
  res.indistinguished = part.indistinguished_pairs();
  return res;
}

}  // namespace

namespace {

int usage() {
  std::fprintf(stderr, "usage: bench_ablation_lower [--circuits=s298,...] [--tests=N] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "tests", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s344", "s526"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Ablation: Procedure-1 LOWER early-stop threshold "
              "(%zu random tests per circuit)\n\n", num_tests);
  std::printf("%-8s %6s %15s %18s %18s\n", "circuit", "LOWER",
              "indistinguished", "candidates seen", "candidates total");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng rng(seed);
    tests.add_random(num_tests, rng);
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    for (std::size_t lower : {1u, 2u, 5u, 10u, 20u, 1000000u}) {
      const LowerRun r = run_with_lower(rm, lower);
      char label[16];
      if (lower == 1000000u)
        std::snprintf(label, sizeof label, "inf");
      else
        std::snprintf(label, sizeof label, "%zu", lower);
      std::printf("%-8s %6s %15llu %18zu %18zu\n", name.c_str(), label,
                  (unsigned long long)r.indistinguished, r.candidates_scanned,
                  r.candidates_total);
    }
    std::printf("\n");
  }
  return 0;
}
