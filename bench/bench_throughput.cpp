// Serving-layer throughput bench (ISSUE 4 acceptance harness, extended
// with the runtime-dispatched SIMD variants and top-k pruned ranking).
//
// Measurements over one packed signature store built from a >= 1k-fault
// same/different dictionary:
//
//   1. Kernel speedup — per-query ranking sweeps with the dispatched
//      kernel (widest SIMD the CPU supports) vs. the legacy per-bit loop,
//      on identical rows; then every supported variant (scalar/SIMD) A/B'd
//      on the same sweep. Built-in self-check: every path must produce
//      identical mismatch counts and identical rankings for every query;
//      the run FAILS (exit 1) on any divergence or if the single-thread
//      dispatched-vs-per-bit speedup is < 3x.
//   1c. Top-k pruned engine ranking vs the exhaustive sweep — bit-
//      identical on every query (and sharded == sequential), then timed.
//   2. Service throughput — queries/sec and p50/p99 latency across a
//      thread-count x batch-size grid of DiagnosisService configurations
//      (cache off, so every query pays a full ranking sweep).
//   3. Cache effect — the same query stream replayed against a cached
//      service.
//
// Self-checks also pin the serving equivalences: store ranking ==
// dictionary ranking (shared per-kind impls), and service (batch=1, cache
// off) == direct engine call.
//
//   $ ./bench_throughput [--circuit=s1423] [--seed=1] [--patterns=96]
//       [--queries=256] [--threads-list=1,2,4] [--batch-list=1,8,32]
//       [--json=BENCH_throughput.json]
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <exception>
#include <future>
#include <string>
#include <vector>

#include "bmcirc/registry.h"
#include "diag/engine.h"
#include "dict/full_dict.h"
#include "dict/samediff_dict.h"
#include "fault/collapse.h"
#include "json_writer.h"
#include "netlist/transform.h"
#include "serve/diagnosis_service.h"
#include "sim/testset.h"
#include "store/kernels.h"
#include "store/signature_store.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/threadpool.h"
#include "util/timer.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_throughput [--circuit=s1423] [--seed=1]\n"
               "  [--patterns=96] [--queries=256] [--threads-list=1,2,4]\n"
               "  [--batch-list=1,8,32] [--json=FILE]\n");
  return 1;
}

struct Query {
  std::vector<Observed> observed;
  BitVec bits;  // packed same/different signature (baseline id 0)
  BitVec care;  // cared tests
};

bool same_matches(const std::vector<DiagnosisMatch>& a,
                  const std::vector<DiagnosisMatch>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].fault != b[i].fault || a[i].mismatches != b[i].mismatches ||
        a[i].margin != b[i].margin ||
        a[i].effective_tests != b[i].effective_tests)
      return false;
  return true;
}

bool same_diagnosis(const EngineDiagnosis& a, const EngineDiagnosis& b) {
  return a.outcome == b.outcome && a.best_mismatches == b.best_mismatches &&
         a.margin == b.margin && a.effective_tests == b.effective_tests &&
         a.dont_care_tests == b.dont_care_tests &&
         a.unknown_tests == b.unknown_tests && a.completed == b.completed &&
         a.cover == b.cover && a.uncovered_failures == b.uncovered_failures &&
         same_matches(a.matches, b.matches);
}

// Runs `sweep` repeatedly, doubling the repetition count until the run
// takes at least 100 ms, and returns seconds per single sweep.
template <typename Fn>
double time_per_sweep(const Fn& sweep) {
  std::size_t reps = 1;
  for (;;) {
    Timer t;
    for (std::size_t r = 0; r < reps; ++r) sweep();
    const double s = t.seconds();
    if (s >= 0.1) return s / static_cast<double>(reps);
    reps *= 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"circuit", "seed", "patterns", "queries", "threads-list", "batch-list",
       "json"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::string circuit;
  std::uint64_t seed = 1;
  std::size_t patterns = 96, queries = 256;
  std::vector<std::int64_t> threads_list, batch_list;
  try {
    circuit = args.get("circuit", "s1423");
    seed = static_cast<std::uint64_t>(args.get_int("seed", 1, 0));
    patterns = static_cast<std::size_t>(args.get_int("patterns", 96, 1, 1 << 16));
    queries = static_cast<std::size_t>(args.get_int("queries", 256, 1, 1 << 20));
    threads_list = args.get_int_list("threads-list", 1, 4096);
    batch_list = args.get_int_list("batch-list", 1, 1 << 16);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }
  if (threads_list.empty()) threads_list = {1, 2, 4};
  if (batch_list.empty()) batch_list = {1, 8, 32};
  const std::string json_path = args.get("json");

  // Every measured number lands here as well as on stdout; --json dumps
  // the collected records for CI archival.
  std::vector<bench::JsonRecord> records;
  const auto rec = [&](std::size_t threads, const std::string& metric,
                       double value) {
    records.push_back({"bench_throughput", circuit, threads, metric, value});
  };

  Netlist nl = load_benchmark(circuit);
  if (nl.has_dffs()) nl = full_scan(nl);
  const FaultList faults = collapsed_fault_list(nl).collapsed;
  std::printf("%s: %zu collapsed faults, %zu random patterns\n",
              circuit.c_str(), faults.size(), patterns);
  if (faults.size() < 1000)
    std::printf("note: < 1000 faults; the >=3x criterion is specified for a "
                ">= 1k-fault dictionary\n");

  Rng rng(seed);
  TestSet tests(nl.num_inputs());
  tests.add_random(patterns, rng);
  const ResponseMatrix rm = build_response_matrix(nl, faults, tests, {});
  const FullDictionary full = FullDictionary::build(rm);
  // Fault-free baselines everywhere: dictionary content equals pass/fail,
  // which is irrelevant here — the kernels sweep the same packed bits
  // whatever the baselines are.
  const SameDifferentDictionary sd = SameDifferentDictionary::build(
      rm, std::vector<ResponseId>(tests.size(), 0));
  const SignatureStore store = SignatureStore::build(sd);

  const std::size_t k = sd.num_faults();
  const std::size_t n = sd.num_tests();

  // Query stream: responses of random faults; a quarter of the queries
  // lose two datalog records (kMissing) to keep the masked path honest.
  std::vector<Query> qs(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    const auto f = static_cast<FaultId>(rng.below(k));
    qs[q].observed.resize(n);
    for (std::size_t t = 0; t < n; ++t)
      qs[q].observed[t] = Observed::of(full.entry(f, t));
    if (q % 4 == 0 && n >= 2) {
      // Two DISTINCT dropped records: independent draws can collide and
      // silently degrade a two-dropout query into a single-dropout one.
      const std::size_t i1 = rng.below(n);
      std::size_t i2 = rng.below(n - 1);
      if (i2 >= i1) ++i2;
      qs[q].observed[i1] = Observed::missing();
      qs[q].observed[i2] = Observed::missing();
    }
    qs[q].bits = BitVec(n);
    qs[q].care = BitVec(n);
    for (std::size_t t = 0; t < n; ++t) {
      if (qs[q].observed[t].dont_care()) continue;
      qs[q].care.set(t, true);
      qs[q].bits.set(t, qs[q].observed[t].value != 0);
    }
  }

  // --- 1. Kernel speedup: full ranking sweep (all k faults per query). ---
  const std::size_t nwords = qs[0].bits.words().size();
  std::vector<std::uint32_t> packed_counts(queries * k);
  std::vector<std::uint32_t> legacy_counts(queries * k);
  std::uint64_t sink = 0;  // keeps the optimizer from deleting the sweeps

  const double packed_s = time_per_sweep([&] {
    for (std::size_t q = 0; q < queries; ++q) {
      const std::uint64_t* ow = qs[q].bits.words().data();
      const std::uint64_t* cw = qs[q].care.words().data();
      for (std::size_t f = 0; f < k; ++f) {
        const std::uint32_t m = kernels::masked_hamming(
            store.row_words(static_cast<FaultId>(f)), ow, cw, nwords);
        packed_counts[q * k + f] = m;
        sink += m;
      }
    }
  });
  const double legacy_s = time_per_sweep([&] {
    for (std::size_t q = 0; q < queries; ++q) {
      const std::uint64_t* ow = qs[q].bits.words().data();
      const std::uint64_t* cw = qs[q].care.words().data();
      for (std::size_t f = 0; f < k; ++f) {
        const std::uint32_t m = kernels::masked_hamming_reference(
            store.row_words(static_cast<FaultId>(f)), ow, cw, n);
        legacy_counts[q * k + f] = m;
        sink += m;
      }
    }
  });

  bool ok = true;
  if (packed_counts != legacy_counts) {
    std::printf("SELF-CHECK FAILED: packed and legacy mismatch counts "
                "diverge\n");
    ok = false;
  } else {
    // Identical counts imply identical rankings through the shared sort;
    // pin it explicitly on a sample anyway.
    for (std::size_t q = 0; q < std::min<std::size_t>(queries, 8); ++q) {
      std::vector<DiagnosisMatch> a, b;
      for (std::size_t f = 0; f < k; ++f) {
        a.push_back({static_cast<FaultId>(f), packed_counts[q * k + f], 0,
                     static_cast<std::uint32_t>(n)});
        b.push_back({static_cast<FaultId>(f), legacy_counts[q * k + f], 0,
                     static_cast<std::uint32_t>(n)});
      }
      if (!same_matches(rank_matches(std::move(a), 10),
                        rank_matches(std::move(b), 10))) {
        std::printf("SELF-CHECK FAILED: rankings diverge on query %zu\n", q);
        ok = false;
        break;
      }
    }
  }

  const double speedup = legacy_s / packed_s;
  const double sweeps_per_s = 1.0 / packed_s;
  std::printf("\nkernel ranking sweep (%zu queries x %zu faults x %zu tests, "
              "single thread)\n", queries, k, n);
  std::printf("  %-18s %12.3f ms/sweep\n", "legacy per-bit", legacy_s * 1e3);
  std::printf("  %-18s %12.3f ms/sweep  (%.1f sweeps/s)  [dispatched: %s]\n",
              "packed popcount", packed_s * 1e3, sweeps_per_s,
              kernels::dispatch().name);
  std::printf("  speedup %.1fx (criterion: >= 3x)%s\n", speedup,
              speedup >= 3.0 ? "" : "  FAILED");
  if (speedup < 3.0) ok = false;
  rec(1, "legacy_ms_per_sweep", legacy_s * 1e3);
  rec(1, "packed_ms_per_sweep", packed_s * 1e3);
  rec(1, "kernel_speedup", speedup);

  // --- 1b. Every supported kernel variant on the same sweep. ------------
  // The dispatched table above is one of these; timing all of them turns
  // the bench into an on-machine A/B of scalar vs each SIMD width, each
  // gated bit-identical against the per-bit legacy counts first.
  std::vector<std::uint32_t> variant_counts(queries * k);
  for (const kernels::KernelTable* kt : kernels::supported_kernels()) {
    const double var_s = time_per_sweep([&] {
      for (std::size_t q = 0; q < queries; ++q) {
        const std::uint64_t* ow = qs[q].bits.words().data();
        const std::uint64_t* cw = qs[q].care.words().data();
        for (std::size_t f = 0; f < k; ++f) {
          const std::uint32_t m = kt->masked_hamming(
              store.row_words(static_cast<FaultId>(f)), ow, cw, nwords);
          variant_counts[q * k + f] = m;
          sink += m;
        }
      }
    });
    if (variant_counts != legacy_counts) {
      std::printf("SELF-CHECK FAILED: %s kernel counts diverge from the "
                  "per-bit oracle\n", kt->name);
      ok = false;
    }
    std::printf("  %-18s %12.3f ms/sweep  (%.1fx vs per-bit)\n", kt->name,
                var_s * 1e3, legacy_s / var_s);
    rec(1, std::string("ms_per_sweep_") + kt->name, var_s * 1e3);
  }

  // --- Equivalence self-checks (store vs dict, service vs engine). ------
  for (std::size_t q = 0; q < std::min<std::size_t>(queries, 16); ++q) {
    const EngineDiagnosis via_store = diagnose_observed(store, qs[q].observed);
    const EngineDiagnosis via_dict = diagnose_observed(sd, qs[q].observed);
    if (!same_diagnosis(via_store, via_dict)) {
      std::printf("SELF-CHECK FAILED: store and dictionary diagnoses "
                  "diverge on query %zu\n", q);
      ok = false;
      break;
    }
  }
  {
    ServiceOptions sopts;
    sopts.threads = 1;
    sopts.batch = 1;
    sopts.cache = 0;
    DiagnosisService service(SignatureStore::build(sd), sopts);
    for (std::size_t q = 0; q < std::min<std::size_t>(queries, 16); ++q) {
      const ServiceResponse r = service.diagnose(qs[q].observed);
      if (!same_diagnosis(r.diagnosis, diagnose_observed(store, qs[q].observed))) {
        std::printf("SELF-CHECK FAILED: service and engine diagnoses "
                    "diverge on query %zu\n", q);
        ok = false;
        break;
      }
    }
  }
  if (ok) std::printf("self-check passed: identical rankings on all paths\n");

  // --- 1c. Top-k pruned ranking vs the exhaustive sweep. ----------------
  // The pruned path must be bit-identical on EVERY query (engine.h proves
  // why; this pins it on real data) — then its speedup is free accuracy.
  {
    EngineOptions full_opt;
    full_opt.prune = false;
    EngineOptions pruned_opt;
    pruned_opt.prune = true;

    for (std::size_t q = 0; q < queries; ++q) {
      if (!same_diagnosis(diagnose_observed(store, qs[q].observed, pruned_opt),
                          diagnose_observed(store, qs[q].observed, full_opt))) {
        std::printf("SELF-CHECK FAILED: pruned and full rankings diverge on "
                    "query %zu\n", q);
        ok = false;
        break;
      }
    }
    // Sharded sweep (forced on): same answers as the sequential one.
    {
      ThreadPool pool(2);
      EngineOptions sharded_opt = pruned_opt;
      sharded_opt.pool = &pool;
      sharded_opt.shard_min_faults = 1;
      for (std::size_t q = 0; q < std::min<std::size_t>(queries, 16); ++q) {
        if (!same_diagnosis(
                diagnose_observed(store, qs[q].observed, sharded_opt),
                diagnose_observed(store, qs[q].observed, pruned_opt))) {
          std::printf("SELF-CHECK FAILED: sharded and sequential rankings "
                      "diverge on query %zu\n", q);
          ok = false;
          break;
        }
      }
    }

    const double full_rank_s = time_per_sweep([&] {
      for (std::size_t q = 0; q < queries; ++q)
        sink += diagnose_observed(store, qs[q].observed, full_opt).matches.size();
    }) / static_cast<double>(queries);
    const double pruned_rank_s = time_per_sweep([&] {
      for (std::size_t q = 0; q < queries; ++q)
        sink +=
            diagnose_observed(store, qs[q].observed, pruned_opt).matches.size();
    }) / static_cast<double>(queries);
    std::printf("\nengine ranking, top-k pruning (max_results=%zu)\n",
                pruned_opt.max_results);
    std::printf("  %-18s %12.3f ms/query\n", "full sweep",
                full_rank_s * 1e3);
    std::printf("  %-18s %12.3f ms/query  (%.2fx)\n", "pruned top-k",
                pruned_rank_s * 1e3, full_rank_s / pruned_rank_s);
    rec(1, "rank_full_ms_per_query", full_rank_s * 1e3);
    rec(1, "rank_pruned_ms_per_query", pruned_rank_s * 1e3);
    rec(1, "topk_speedup", full_rank_s / pruned_rank_s);
  }

  // --- 2. Service throughput grid (cache off). --------------------------
  std::printf("\nservice throughput, %zu queries (cache off)\n", queries);
  std::printf("  %7s %6s %12s %10s %10s %10s\n", "threads", "batch", "qps",
              "p50 ms", "p99 ms", "max ms");
  for (const std::int64_t th : threads_list) {
    for (const std::int64_t ba : batch_list) {
      ServiceOptions sopts;
      sopts.threads = static_cast<std::size_t>(th);
      sopts.batch = static_cast<std::size_t>(ba);
      sopts.cache = 0;
      sopts.queue_capacity = queries + 1;
      DiagnosisService service(SignatureStore::build(sd), sopts);
      std::vector<std::future<ServiceResponse>> futs;
      futs.reserve(queries);
      Timer t;
      for (std::size_t q = 0; q < queries; ++q)
        futs.push_back(service.submit(qs[q].observed));
      for (auto& f : futs) f.get();
      const double secs = t.seconds();
      const ServiceStats st = service.stats();
      std::printf("  %7lld %6lld %12.1f %10.3f %10.3f %10.3f\n",
                  static_cast<long long>(th), static_cast<long long>(ba),
                  static_cast<double>(queries) / secs, st.p50_ms, st.p99_ms,
                  st.max_ms);
      // Batch size rides in the metric name: the schema has no batch field.
      const std::string suffix = "_b" + std::to_string(ba);
      rec(sopts.threads, "qps" + suffix,
          static_cast<double>(queries) / secs);
      rec(sopts.threads, "p50_ms" + suffix, st.p50_ms);
      rec(sopts.threads, "p99_ms" + suffix, st.p99_ms);
    }
  }

  // --- 3. Cache effect: the same stream replayed. -----------------------
  {
    ServiceOptions sopts;
    sopts.threads = 1;
    sopts.batch = 8;
    sopts.cache = 2 * queries;
    sopts.queue_capacity = 2 * queries + 1;
    DiagnosisService service(SignatureStore::build(sd), sopts);
    std::vector<std::future<ServiceResponse>> futs;
    Timer t;
    for (int round = 0; round < 2; ++round)
      for (std::size_t q = 0; q < queries; ++q)
        futs.push_back(service.submit(qs[q].observed));
    for (auto& f : futs) f.get();
    const double secs = t.seconds();
    const ServiceStats st = service.stats();
    std::printf("\ncached replay (2 x %zu queries, cache on): %.1f qps, "
                "%llu hits / %llu misses\n", queries,
                static_cast<double>(2 * queries) / secs,
                static_cast<unsigned long long>(st.cache_hits),
                static_cast<unsigned long long>(st.cache_misses));
    rec(1, "cached_replay_qps", static_cast<double>(2 * queries) / secs);
    rec(1, "cached_replay_hits", static_cast<double>(st.cache_hits));
    rec(1, "cached_replay_misses", static_cast<double>(st.cache_misses));
  }

  std::printf("(checksum %llu)\n", static_cast<unsigned long long>(sink));

  if (!json_path.empty()) {
    try {
      bench::write_bench_json(json_path, records);
      std::printf("wrote %zu records to %s\n", records.size(),
                  json_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
