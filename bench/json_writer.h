// Tiny machine-readable result sink shared by the benchmark drivers: a
// flat JSON array of {benchmark, circuit, threads, metric, value} records,
// one per measured number, so CI can archive and diff benchmark runs
// without scraping the human-oriented tables.
//
//   [
//     {"benchmark": "bench_throughput", "circuit": "s1423", "threads": 4,
//      "metric": "qps_b8", "value": 1234.5},
//     ...
//   ]
//
// Header-only on purpose: the bench/ directory has no library target.
#pragma once

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <cmath>

namespace sddict::bench {

struct JsonRecord {
  std::string benchmark;  // driver name, e.g. "bench_throughput"
  std::string circuit;    // benchmark circuit the number was measured on
  std::size_t threads = 0;  // thread count of the configuration (0 = n/a)
  std::string metric;     // e.g. "qps_b8", "kernel_speedup", "sim_s"
  double value = 0;
};

namespace detail {

inline void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace detail

// Serializes the records and writes them to `path`, overwriting any
// previous run's file. Throws std::runtime_error on I/O failure. Non-finite
// values become JSON null (JSON has no NaN/Inf).
inline void write_bench_json(const std::string& path,
                             const std::vector<JsonRecord>& records) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out += "  {\"benchmark\": ";
    detail::append_json_string(&out, r.benchmark);
    out += ", \"circuit\": ";
    detail::append_json_string(&out, r.circuit);
    out += ", \"threads\": " + std::to_string(r.threads);
    out += ", \"metric\": ";
    detail::append_json_string(&out, r.metric);
    out += ", \"value\": ";
    if (std::isfinite(r.value)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.9g", r.value);
      out += buf;
    } else {
      out += "null";
    }
    out += i + 1 < records.size() ? "},\n" : "}\n";
  }
  out += "]\n";

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.flush();
  if (!f) throw std::runtime_error("failed to write " + path);
}

}  // namespace sddict::bench
