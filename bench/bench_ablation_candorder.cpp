// Ablation: candidate enumeration order within Z_j. Procedure 1 scans the
// candidate baselines of a test in a fixed order and the LOWER early stop
// makes the result order-dependent (paper Section 3 enumerates "the output
// vectors in Z_j" without fixing an order). Compares three orders under a
// tight LOWER: first-seen (fault-enumeration order), most-common-response
// first, and seeded random.
//
//   $ ./bench_ablation_candorder [--circuits=...] [--tests=150] [--lower=3]
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bmcirc/registry.h"
#include "core/baseline.h"
#include "dict/partition.h"
#include "fault/collapse.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/rng.h"

using namespace sddict;

namespace {

enum class Order { kFirstSeen, kCommonFirst, kRandom };

std::uint64_t run_with_order(const ResponseMatrix& rm, std::size_t lower,
                             Order order, Rng& rng) {
  Partition part(rm.num_faults());
  for (std::size_t j = 0; j < rm.num_tests(); ++j) {
    if (part.fully_refined()) break;
    const auto dist = candidate_dist(rm, j, part);
    std::vector<ResponseId> cand(dist.size());
    std::iota(cand.begin(), cand.end(), ResponseId{0});
    if (order == Order::kCommonFirst) {
      const auto counts = rm.response_counts(j);
      std::stable_sort(cand.begin(), cand.end(), [&](ResponseId a, ResponseId b) {
        return counts[a] > counts[b];
      });
    } else if (order == Order::kRandom) {
      rng.shuffle(cand);
    }
    // LOWER scan over the chosen order.
    ResponseId best_id = cand.empty() ? 0 : cand[0];
    bool have_best = false;
    std::uint64_t best = 0;
    std::size_t low_run = 0;
    for (ResponseId z : cand) {
      if (!have_best || dist[z] > best) {
        best = dist[z];
        best_id = z;
        have_best = true;
        low_run = 0;
      } else if (dist[z] < best) {
        if (++low_run == lower) break;
      }
    }
    part.refine_with([&](std::uint32_t f) {
      return static_cast<std::uint32_t>(rm.response(f, j) == best_id);
    });
  }
  return part.indistinguished_pairs();
}

}  // namespace

namespace {

int usage() {
  std::fprintf(stderr, "usage: bench_ablation_candorder [--circuits=s298,...] [--tests=N] [--lower=N] [--seed=N]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags({"circuits", "tests", "lower", "seed"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }
  std::vector<std::string> circuits;
  std::size_t num_tests = 0;
  std::size_t lower = 0;
  std::uint64_t seed = 0;
  try {
    set_log_level(LogLevel::kWarn);
    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = {"s298", "s344", "s526"};
    num_tests = args.get_int("tests", 150, 1, 1 << 20);
    lower = args.get_int("lower", 3, 1, 1 << 20);
    seed = args.get_int("seed", 1, 0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Ablation: candidate order inside Z_j under LOWER=%zu\n\n",
              lower);
  std::printf("%-8s %14s %14s %14s\n", "circuit", "first-seen",
              "common-first", "random");

  for (const auto& name : circuits) {
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    const FaultList faults = collapsed_fault_list(nl).collapsed;
    TestSet tests(nl.num_inputs());
    Rng trng(seed);
    tests.add_random(num_tests, trng);
    const ResponseMatrix rm = build_response_matrix(nl, faults, tests);

    Rng rng(seed + 1);
    const auto a = run_with_order(rm, lower, Order::kFirstSeen, rng);
    const auto b = run_with_order(rm, lower, Order::kCommonFirst, rng);
    const auto c = run_with_order(rm, lower, Order::kRandom, rng);
    std::printf("%-8s %14llu %14llu %14llu\n", name.c_str(),
                (unsigned long long)a, (unsigned long long)b,
                (unsigned long long)c);
  }
  std::printf("\nlower indistinguished counts are better; differences show "
              "the enumeration-order sensitivity that CALLS1 restarts and "
              "Procedure 2 smooth out.\n");
  return 0;
}
