// Regenerates the paper's Table 6: for every circuit and test-set type,
// dictionary sizes (full / pass-fail / same-different) and indistinguished
// fault-pair counts (full / pass-fail / s-d after Procedure 1 / s-d after
// Procedure 2).
//
// Defaults are sized for an unattended run over all circuits
// (CALLS1 scaled down to 10); reproduce the paper's exact configuration
// with:
//
//   $ ./bench_table6 --calls1=100 --lower=10
//
// Useful flags:
//   --circuits=s208,s298,...   subset of circuits (default: all 16)
//   --ttype=diag|10det|both    test-set types to run (default both)
//   --calls1=N --lower=N       Procedure-1 parameters (paper: 100 / 10)
//   --ndetect=N                n for the n-detection test set (paper: 10)
//   --proc2=false              skip Procedure 2
//   --seed=N
//   --threads=N                worker threads for fault simulation and
//                              Procedure-1 restarts (0 = all cores;
//                              results are identical at any thread count)
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bmcirc/registry.h"
#include "core/experiment.h"
#include "json_writer.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "util/cli.h"
#include "util/log.h"
#include "util/timer.h"

using namespace sddict;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_table6 [--circuits=s208,s298,...]\n"
               "  [--ttype=diag|10det|both] [--calls1=N] [--lower=N]\n"
               "  [--ndetect=N] [--proc2=false] [--seed=N] [--threads=N]\n"
               "  [--verbose=true] [--json=FILE]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto unknown = args.unknown_flags(
      {"circuits", "ttype", "calls1", "lower", "ndetect", "proc2", "seed",
       "threads", "verbose", "json"});
  if (!unknown.empty()) {
    for (const auto& f : unknown)
      std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
    return usage();
  }

  std::vector<std::string> circuits;
  std::string ttype;
  std::string json_path;
  ExperimentConfig cfg;
  try {
    json_path = args.get("json");
    if (args.get_bool("verbose", false))
      set_log_level(LogLevel::kDebug);
    else
      set_log_level(LogLevel::kWarn);

    circuits = args.get_list("circuits");
    if (circuits.empty()) circuits = table6_circuit_names();

    ttype = args.get("ttype", "both");
    if (ttype != "diag" && ttype != "10det" && ttype != "both")
      throw std::invalid_argument("flag --ttype must be diag, 10det or both");
    cfg.baseline.lower = args.get_int("lower", 10, 1, 1 << 20);
    cfg.baseline.calls1 = args.get_int("calls1", 10, 1, 1 << 20);
    cfg.baseline.seed = args.get_int("seed", 1, 0);
    cfg.baseline.num_threads = args.get_int("threads", 0, 0, 4096);
    cfg.ndetect.n = args.get_int("ndetect", 10, 1, 1000);
    cfg.ndetect.seed = cfg.baseline.seed;
    cfg.diag.seed = cfg.baseline.seed;
    cfg.run_proc2 = args.get_bool("proc2", true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }

  std::printf("Table 6: experimental results (CALLS1=%zu, LOWER=%zu)\n",
              cfg.baseline.calls1, cfg.baseline.lower);
  std::printf("note: circuits are deterministic synthetic stand-ins at the "
              "published ISCAS-89 profiles (see DESIGN.md)\n\n");
  std::printf("%s\n", experiment_header().c_str());

  Timer total;
  std::vector<bench::JsonRecord> records;
  for (const auto& name : circuits) {
    if (!is_known_benchmark(name)) {
      std::fprintf(stderr, "skipping unknown circuit '%s'\n", name.c_str());
      continue;
    }
    Netlist nl = load_benchmark(name);
    if (nl.has_dffs()) nl = full_scan(nl);
    nl.set_name(name);  // paper prints the base circuit name

    for (TestSetKind kind : {TestSetKind::kDiagnostic, TestSetKind::kTenDetect}) {
      if (ttype == "diag" && kind != TestSetKind::kDiagnostic) continue;
      if (ttype == "10det" && kind != TestSetKind::kTenDetect) continue;
      Timer row_timer;
      const ExperimentRow row = run_experiment(nl, kind, cfg);
      std::printf("%s\n", format_experiment_row(row).c_str());
      std::fflush(stdout);
      const auto record = [&](const std::string& metric, double value) {
        records.push_back({"bench_table6", row.circuit,
                           cfg.baseline.num_threads,
                           metric + "_" + row.ttype, value});
      };
      record("tests", (double)row.num_tests);
      record("faults", (double)row.num_faults);
      record("indist_full", (double)row.indist_full);
      record("indist_passfail", (double)row.indist_passfail);
      record("indist_sd_p1", (double)row.indist_sd_rand);
      record("indist_sd_p2", (double)row.indist_sd_repl);
      record("sd_bits", (double)row.sizes.same_different_bits);
      std::fprintf(stderr,
                   "  [%s %s: %.1fs total; testgen %.1fs, faultsim %.1fs, "
                   "proc1 %.1fs (%zu calls), proc2 %.1fs; %zu faults, %zu "
                   "undetected]\n",
                   row.circuit.c_str(), row.ttype.c_str(), row_timer.seconds(),
                   row.seconds_testgen, row.seconds_faultsim, row.seconds_proc1,
                   row.proc1_calls, row.seconds_proc2, row.num_faults,
                   row.num_undetected);
    }
  }
  std::fprintf(stderr, "table 6 complete in %.1fs\n", total.seconds());
  if (!json_path.empty()) {
    bench::write_bench_json(json_path, records);
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}
